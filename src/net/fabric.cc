#include "src/net/fabric.h"

#include <algorithm>

#include <utility>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace slim {

Link::Link(Simulator* sim, LinkOptions options, Rng rng)
    : sim_(sim), options_(options), rng_(rng) {
  SLIM_CHECK(sim != nullptr);
  SLIM_CHECK(options.bits_per_second > 0);
}

void Link::Send(Datagram dgram) {
  const int64_t wire_bytes = static_cast<int64_t>(dgram.payload.size()) + kDatagramOverheadBytes;
  if (queued_bytes_ + wire_bytes > options_.queue_limit_bytes) {
    ++stats_.datagrams_dropped_queue;
    return;
  }
  if (options_.loss_probability > 0.0 && rng_.NextBool(options_.loss_probability)) {
    ++stats_.datagrams_dropped_loss;
    return;
  }
  ++stats_.datagrams_sent;
  stats_.bytes_sent += wire_bytes;
  queued_bytes_ += wire_bytes;

  const SimTime start = std::max(sim_->now(), busy_until_);
  const SimTime done = start + TransmissionDelay(wire_bytes, options_.bits_per_second);
  busy_until_ = done;
  SimDuration extra = options_.propagation;
  if (options_.reorder_jitter > 0) {
    extra += static_cast<SimDuration>(rng_.NextBelow(static_cast<uint64_t>(
        options_.reorder_jitter)));
  }
  sim_->ScheduleAt(done + extra, [this, d = std::move(dgram), wire_bytes]() mutable {
    queued_bytes_ -= wire_bytes;
    if (deliver_) {
      deliver_(std::move(d));
    }
  });
}

Fabric::Fabric(Simulator* sim, FabricOptions options)
    : sim_(sim), options_(options), rng_(0xfab41c) {
  SLIM_CHECK(sim != nullptr);
}

NodeId Fabric::AddNode() { return AddNode(options_.link); }

NodeId Fabric::AddNode(const LinkOptions& link_options) {
  const NodeId id = static_cast<NodeId>(ports_.size());
  auto port = std::make_unique<Port>();
  LinkOptions up_options = link_options;
  up_options.queue_limit_bytes = std::max(up_options.queue_limit_bytes,
                                          options_.host_queue_bytes);
  port->up = std::make_unique<Link>(sim_, up_options, rng_.Split());
  port->down = std::make_unique<Link>(sim_, link_options, rng_.Split());
  // The uplink terminates at the switch, which forwards onto the destination's downlink.
  port->up->set_deliver([this](Datagram dgram) {
    if (dgram.dst >= ports_.size()) {
      ++misrouted_;
      return;
    }
    ports_[dgram.dst]->down->Send(std::move(dgram));
  });
  // The downlink terminates at the node's receive callback.
  Port* raw = port.get();
  port->down->set_deliver([raw](Datagram dgram) {
    if (raw->receive) {
      raw->receive(std::move(dgram));
    }
  });
  ports_.push_back(std::move(port));
  return id;
}

void Fabric::SetReceiver(NodeId node, ReceiveFn fn) {
  SLIM_CHECK(node < ports_.size());
  ports_[node]->receive = std::move(fn);
}

void Fabric::InjectFaults(const FaultProfile& profile) {
  if (profile.active()) {
    default_faults_ = profile;
  } else {
    default_faults_.reset();
  }
}

void Fabric::InjectFaults(NodeId src, NodeId dst, const FaultProfile& profile) {
  pair_faults_[{src, dst}] = profile;
}

void Fabric::ClearFaults(NodeId src, NodeId dst) { pair_faults_.erase({src, dst}); }

void Fabric::ClearFaults() {
  default_faults_.reset();
  pair_faults_.clear();
}

const FaultProfile* Fabric::ProfileFor(NodeId src, NodeId dst) const {
  const auto it = pair_faults_.find({src, dst});
  if (it != pair_faults_.end()) {
    return it->second.active() ? &it->second : nullptr;
  }
  return default_faults_.has_value() ? &*default_faults_ : nullptr;
}

Rng& Fabric::FaultRngFor(NodeId src, NodeId dst) {
  const auto key = std::make_pair(src, dst);
  auto it = fault_rngs_.find(key);
  if (it == fault_rngs_.end()) {
    // Seeded purely from (fault_seed, src, dst): the schedule on one path does not depend
    // on which paths saw traffic first, keeping whole-fabric runs reproducible.
    it = fault_rngs_.emplace(key, Rng(Rng::MixSeed(options_.fault_seed, src, dst))).first;
  }
  return it->second;
}

void Fabric::SendWithFaults(Datagram dgram, const FaultProfile& profile) {
  Rng& rng = FaultRngFor(dgram.src, dgram.dst);
  if (profile.loss > 0.0 && rng.NextBool(profile.loss)) {
    ++fault_stats_.datagrams_dropped;
    return;
  }
  if (profile.truncate > 0.0 && dgram.payload.size() > 1 && rng.NextBool(profile.truncate)) {
    dgram.payload.resize(1 + rng.NextBelow(dgram.payload.size() - 1));
    ++fault_stats_.datagrams_truncated;
  }
  if (profile.corrupt > 0.0 && !dgram.payload.empty() && rng.NextBool(profile.corrupt)) {
    const uint64_t flips = 1 + rng.NextBelow(4);
    for (uint64_t i = 0; i < flips; ++i) {
      const size_t offset = static_cast<size_t>(rng.NextBelow(dgram.payload.size()));
      dgram.payload[offset] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
    ++fault_stats_.datagrams_corrupted;
  }
  const bool duplicated = profile.duplicate > 0.0 && rng.NextBool(profile.duplicate);
  if (duplicated) {
    ++fault_stats_.datagrams_duplicated;
  }
  // The original and any duplicate draw independent injection delays, so a duplicate can
  // overtake its original — the nastiest reordering the dedup window must absorb.
  const int copies = duplicated ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    Datagram copy = (i + 1 == copies) ? std::move(dgram) : dgram;
    SimDuration hold = 0;
    if (profile.delay_jitter > 0) {
      hold = static_cast<SimDuration>(
          rng.NextBelow(static_cast<uint64_t>(profile.delay_jitter)));
    }
    if (hold > 0) {
      ++fault_stats_.datagrams_delayed;
      sim_->Schedule(hold, [this, d = std::move(copy)]() mutable { SendOnUplink(std::move(d)); });
    } else {
      SendOnUplink(std::move(copy));
    }
  }
}

void Fabric::SendOnUplink(Datagram dgram) {
  ports_[dgram.src]->up->Send(std::move(dgram));
}

void Fabric::Send(Datagram dgram) {
  if (dgram.src >= ports_.size() || dgram.dst >= ports_.size()) {
    ++misrouted_;
    return;
  }
  if (const FaultProfile* profile = ProfileFor(dgram.src, dgram.dst)) {
    SendWithFaults(std::move(dgram), *profile);
    return;
  }
  SendOnUplink(std::move(dgram));
}

bool Fabric::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = true;
  const auto bind = [&](const std::string& name, const int64_t* cell) {
    ok = registry->BindCounter(prefix + "." + name, cell) && ok;
  };
  bind("fault.datagrams_dropped", &fault_stats_.datagrams_dropped);
  bind("fault.datagrams_duplicated", &fault_stats_.datagrams_duplicated);
  bind("fault.datagrams_corrupted", &fault_stats_.datagrams_corrupted);
  bind("fault.datagrams_truncated", &fault_stats_.datagrams_truncated);
  bind("fault.datagrams_delayed", &fault_stats_.datagrams_delayed);
  bind("datagrams_misrouted", &misrouted_);
  // Per-link counters roll up into whole-fabric gauges: pull-mode sums over every port,
  // evaluated only at snapshot time, so nodes added after registration are still counted.
  const auto sum = [this](int64_t LinkStats::* field, bool up) {
    return [this, field, up] {
      int64_t total = 0;
      for (const auto& port : ports_) {
        total += (up ? port->up : port->down)->stats().*field;
      }
      return static_cast<double>(total);
    };
  };
  const auto gauge = [&](const std::string& name, int64_t LinkStats::* field, bool up) {
    ok = registry->BindGauge(prefix + "." + name, sum(field, up)) && ok;
  };
  gauge("uplink.datagrams_sent", &LinkStats::datagrams_sent, true);
  gauge("uplink.bytes_sent", &LinkStats::bytes_sent, true);
  gauge("uplink.datagrams_dropped_queue", &LinkStats::datagrams_dropped_queue, true);
  gauge("uplink.datagrams_dropped_loss", &LinkStats::datagrams_dropped_loss, true);
  gauge("downlink.datagrams_sent", &LinkStats::datagrams_sent, false);
  gauge("downlink.bytes_sent", &LinkStats::bytes_sent, false);
  gauge("downlink.datagrams_dropped_queue", &LinkStats::datagrams_dropped_queue, false);
  gauge("downlink.datagrams_dropped_loss", &LinkStats::datagrams_dropped_loss, false);
  return ok;
}

const LinkStats& Fabric::uplink_stats(NodeId node) const {
  SLIM_CHECK(node < ports_.size());
  return ports_[node]->up->stats();
}

const LinkStats& Fabric::downlink_stats(NodeId node) const {
  SLIM_CHECK(node < ports_.size());
  return ports_[node]->down->stats();
}

}  // namespace slim
