// Simulated interconnection fabric (IF).
//
// Models the paper's deployment: every node (console or server) hangs off one switch port
// over a dedicated full-duplex link. Each unidirectional link has a bandwidth, a propagation
// delay and a bounded FIFO output queue; datagrams experience store-and-forward serialization
// at the sender's link and again at the switch's egress port, which is exactly the contention
// point exercised by the Figure 11 IF-sharing experiment. Optional per-link loss and
// reordering injection exercise the protocol's replay path.

#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace slim {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0xffffffff;

// Ethernet + IP + UDP framing bytes charged to every datagram on the wire.
constexpr int64_t kDatagramOverheadBytes = 46;

// Conventional MTU; the transport fragments SLIM messages to fit.
constexpr int64_t kMtuBytes = 1500;

struct Datagram {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<uint8_t> payload;
};

struct LinkOptions {
  int64_t bits_per_second = 100'000'000;  // 100 Mbps, the paper's IF
  SimDuration propagation = Microseconds(5);
  int64_t queue_limit_bytes = 256 * 1024;
  double loss_probability = 0.0;
  // When > 0, each datagram's delivery is additionally delayed by uniform [0, jitter],
  // which can reorder packets.
  SimDuration reorder_jitter = 0;
};

struct LinkStats {
  int64_t datagrams_sent = 0;
  int64_t datagrams_dropped_queue = 0;
  int64_t datagrams_dropped_loss = 0;
  int64_t bytes_sent = 0;  // includes framing overhead
};

// One unidirectional link: serialization at `bits_per_second`, then propagation.
class Link {
 public:
  using DeliverFn = std::function<void(Datagram)>;

  Link(Simulator* sim, LinkOptions options, Rng rng);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void Send(Datagram dgram);

  const LinkStats& stats() const { return stats_; }
  const LinkOptions& options() const { return options_; }

  // Bytes currently queued behind the head of line (for tests and saturation checks).
  int64_t queued_bytes() const { return queued_bytes_; }

 private:
  Simulator* sim_;
  LinkOptions options_;
  Rng rng_;
  DeliverFn deliver_;
  SimTime busy_until_ = 0;
  int64_t queued_bytes_ = 0;
  LinkStats stats_;
};

struct FabricOptions {
  LinkOptions link;  // applied to every node<->switch link unless overridden per node
  // The node->switch direction is fed by the sending host's kernel, whose socket buffers
  // absorb bursts and backpressure the writer instead of dropping; we model that as a much
  // deeper uplink queue. Drops under contention happen at switch egress ports (the `link`
  // queue limit), which is where real switched ethernet loses packets.
  int64_t host_queue_bytes = 8 * 1024 * 1024;
};

// Star topology around a single output-queued switch.
class Fabric {
 public:
  using ReceiveFn = std::function<void(Datagram)>;

  Fabric(Simulator* sim, FabricOptions options);

  // Adds a node with the fabric-default link options.
  NodeId AddNode();
  // Adds a node whose two links (to and from the switch) use custom options; this is how the
  // bandwidth-scaling experiments model a 1 Mbps home connection on an otherwise fast IF.
  NodeId AddNode(const LinkOptions& link_options);

  void SetReceiver(NodeId node, ReceiveFn fn);

  // Sends from dgram.src to dgram.dst. Unknown nodes are dropped silently (counted).
  void Send(Datagram dgram);

  Simulator* simulator() { return sim_; }

  // Aggregated stats.
  const LinkStats& uplink_stats(NodeId node) const;    // node -> switch
  const LinkStats& downlink_stats(NodeId node) const;  // switch -> node
  int64_t datagrams_misrouted() const { return misrouted_; }

 private:
  struct Port {
    std::unique_ptr<Link> up;    // node -> switch
    std::unique_ptr<Link> down;  // switch -> node
    ReceiveFn receive;
  };

  Simulator* sim_;
  FabricOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<Port>> ports_;
  int64_t misrouted_ = 0;
};

}  // namespace slim

#endif  // SRC_NET_FABRIC_H_
