// Simulated interconnection fabric (IF).
//
// Models the paper's deployment: every node (console or server) hangs off one switch port
// over a dedicated full-duplex link. Each unidirectional link has a bandwidth, a propagation
// delay and a bounded FIFO output queue; datagrams experience store-and-forward serialization
// at the sender's link and again at the switch's egress port, which is exactly the contention
// point exercised by the Figure 11 IF-sharing experiment. Optional per-link loss and
// reordering injection exercise the protocol's replay path, and a deterministic chaos layer
// (FaultProfile, per directed node pair) additionally injects duplication, truncation and
// byte corruption so the transport's failure paths are tested against a genuinely hostile
// fabric, not just a slow one.

#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace slim {

class MetricRegistry;

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0xffffffff;

// Ethernet + IP + UDP framing bytes charged to every datagram on the wire.
constexpr int64_t kDatagramOverheadBytes = 46;

// Conventional MTU; the transport fragments SLIM messages to fit.
constexpr int64_t kMtuBytes = 1500;

struct Datagram {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<uint8_t> payload;
};

struct LinkOptions {
  int64_t bits_per_second = 100'000'000;  // 100 Mbps, the paper's IF
  SimDuration propagation = Microseconds(5);
  int64_t queue_limit_bytes = 256 * 1024;
  double loss_probability = 0.0;
  // When > 0, each datagram's delivery is additionally delayed by uniform [0, jitter],
  // which can reorder packets.
  SimDuration reorder_jitter = 0;
};

struct LinkStats {
  int64_t datagrams_sent = 0;
  int64_t datagrams_dropped_queue = 0;
  int64_t datagrams_dropped_loss = 0;
  int64_t bytes_sent = 0;  // includes framing overhead
};

// One unidirectional link: serialization at `bits_per_second`, then propagation.
class Link {
 public:
  using DeliverFn = std::function<void(Datagram)>;

  Link(Simulator* sim, LinkOptions options, Rng rng);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void Send(Datagram dgram);

  const LinkStats& stats() const { return stats_; }
  const LinkOptions& options() const { return options_; }

  // Bytes currently queued behind the head of line (for tests and saturation checks).
  int64_t queued_bytes() const { return queued_bytes_; }

 private:
  Simulator* sim_;
  LinkOptions options_;
  Rng rng_;
  DeliverFn deliver_;
  SimTime busy_until_ = 0;
  int64_t queued_bytes_ = 0;
  LinkStats stats_;
};

struct FabricOptions {
  LinkOptions link;  // applied to every node<->switch link unless overridden per node
  // The node->switch direction is fed by the sending host's kernel, whose socket buffers
  // absorb bursts and backpressure the writer instead of dropping; we model that as a much
  // deeper uplink queue. Drops under contention happen at switch egress ports (the `link`
  // queue limit), which is where real switched ethernet loses packets.
  int64_t host_queue_bytes = 8 * 1024 * 1024;
  // Base seed for the chaos layer; each directed (src, dst) pair derives its own stream from
  // it, so adding a faulty link never perturbs the fault schedule of another.
  uint64_t fault_seed = 0xc4a05f17u;
};

// Chaos-layer knobs for one directed (src, dst) path. All probabilities are per datagram
// and independent, so one datagram can be (say) both corrupted and duplicated; the faults
// compound the way a genuinely sick fabric's would. Draws come from a per-path RNG seeded
// from FabricOptions::fault_seed, so fault schedules are bit-for-bit reproducible.
struct FaultProfile {
  double loss = 0.0;       // datagram silently dropped
  double duplicate = 0.0;  // a second copy is injected (independently delayed)
  double corrupt = 0.0;    // 1..4 payload bytes are XOR-flipped
  double truncate = 0.0;   // the payload tail is chopped at a random offset
  // When > 0, each datagram (and each injected duplicate) is held back by an independent
  // uniform [0, delay_jitter) before entering its uplink, which reorders traffic.
  SimDuration delay_jitter = 0;

  bool active() const {
    return loss > 0.0 || duplicate > 0.0 || corrupt > 0.0 || truncate > 0.0 ||
           delay_jitter > 0;
  }
};

// What the chaos layer actually did; tests assert against these so a "survived chaos" pass
// can prove faults were really injected rather than the profile being a no-op.
struct FaultStats {
  int64_t datagrams_dropped = 0;
  int64_t datagrams_duplicated = 0;
  int64_t datagrams_corrupted = 0;
  int64_t datagrams_truncated = 0;
  int64_t datagrams_delayed = 0;
};

// Star topology around a single output-queued switch.
class Fabric {
 public:
  using ReceiveFn = std::function<void(Datagram)>;

  Fabric(Simulator* sim, FabricOptions options);

  // Adds a node with the fabric-default link options.
  NodeId AddNode();
  // Adds a node whose two links (to and from the switch) use custom options; this is how the
  // bandwidth-scaling experiments model a 1 Mbps home connection on an otherwise fast IF.
  NodeId AddNode(const LinkOptions& link_options);

  void SetReceiver(NodeId node, ReceiveFn fn);

  // Sends from dgram.src to dgram.dst. Unknown nodes are dropped silently (counted).
  void Send(Datagram dgram);

  // --- Chaos layer (fault injection) ---
  // Applies `profile` to every directed path without a per-pair override. Passing a
  // default-constructed profile turns the default chaos off.
  void InjectFaults(const FaultProfile& profile);
  // Applies `profile` to datagrams traveling src -> dst only (call twice, swapped, for a
  // symmetric sick link). Overrides the fabric-wide default for that path.
  void InjectFaults(NodeId src, NodeId dst, const FaultProfile& profile);
  // Removes the src -> dst override (the fabric-wide default, if any, applies again).
  void ClearFaults(NodeId src, NodeId dst);
  // Removes the fabric-wide default and every per-pair override.
  void ClearFaults();

  Simulator* simulator() { return sim_; }

  // Aggregated stats.
  const LinkStats& uplink_stats(NodeId node) const;    // node -> switch
  const LinkStats& downlink_stats(NodeId node) const;  // switch -> node
  int64_t datagrams_misrouted() const { return misrouted_; }
  const FaultStats& fault_stats() const { return fault_stats_; }

  // Registers the chaos-layer counters (`<prefix>.fault.*`), misroute counter, and
  // whole-fabric uplink/downlink aggregates (pull-mode gauges summing every port) with
  // `registry`. Returns false if any name was rejected (duplicate prefix).
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "fabric");

 private:
  struct Port {
    std::unique_ptr<Link> up;    // node -> switch
    std::unique_ptr<Link> down;  // switch -> node
    ReceiveFn receive;
  };

  // Looks up the profile governing src -> dst (per-pair override first, then the fabric
  // default); returns nullptr when the path is healthy.
  const FaultProfile* ProfileFor(NodeId src, NodeId dst) const;
  Rng& FaultRngFor(NodeId src, NodeId dst);
  // Applies `profile` to one datagram: may drop it, mutate its payload, inject a duplicate
  // and/or delay the handoff to the uplink.
  void SendWithFaults(Datagram dgram, const FaultProfile& profile);
  void SendOnUplink(Datagram dgram);

  Simulator* sim_;
  FabricOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<Port>> ports_;
  int64_t misrouted_ = 0;

  std::optional<FaultProfile> default_faults_;
  std::map<std::pair<NodeId, NodeId>, FaultProfile> pair_faults_;
  std::map<std::pair<NodeId, NodeId>, Rng> fault_rngs_;
  FaultStats fault_stats_;
};

}  // namespace slim

#endif  // SRC_NET_FABRIC_H_
