#include "src/net/transport.h"

#include <algorithm>

#include "src/protocol/wire.h"
#include "src/util/check.h"

namespace slim {

namespace {

constexpr uint8_t kFragmentMagic = 0x5f;
constexpr uint8_t kBatchMagic = 0x5e;
constexpr size_t kFragmentHeaderBytes = 1 + 2 + 2 + 8;  // magic, index, count, msg_seq
constexpr size_t kMaxFragmentPayload =
    static_cast<size_t>(kMtuBytes) - kFragmentHeaderBytes;
// Batch datagram: magic, session, item count; then per item: type, payload length, seq.
constexpr size_t kBatchHeaderBytes = 1 + 4 + 2;
constexpr size_t kBatchItemHeaderBytes = 1 + 2 + 8;
// Only messages small enough to share a datagram with at least one sibling are batched.
constexpr size_t kMaxBatchableBody = 500;

}  // namespace

SlimEndpoint::SlimEndpoint(Fabric* fabric, NodeId self, EndpointOptions options)
    : fabric_(fabric), self_(self), options_(options) {
  SLIM_CHECK(fabric != nullptr);
  fabric_->SetReceiver(self_, [this](Datagram dgram) { OnDatagram(std::move(dgram)); });
}

uint64_t SlimEndpoint::Send(NodeId peer, uint32_t session_id, MessageBody body) {
  Message msg;
  msg.session_id = session_id;
  const bool is_nack = std::holds_alternative<NackMsg>(body);
  msg.seq = is_nack ? 0 : ++next_seq_[peer];
  msg.body = std::move(body);
  const std::vector<uint8_t> bytes = SerializeMessage(msg);
  ++stats_.messages_sent;
  stats_.bytes_sent += static_cast<int64_t>(bytes.size());
  if (!is_nack) {
    // Replay history stores the full framing so a NACKed message replays standalone even if
    // it was originally batched.
    history_.emplace_back(msg.seq, bytes);
    while (history_.size() > options_.replay_history) {
      history_.pop_front();
    }
  }
  if (options_.enable_batching && !is_nack) {
    if (bytes.size() - kMessageHeaderBytes <= kMaxBatchableBody) {
      AppendToBatch(peer, session_id, msg.seq, msg.body);
      return msg.seq;
    }
    // A large message bypasses the batch; anything still held must go first so display
    // commands arrive in the order they were issued.
    FlushBatch(peer);
  }
  SendSerialized(peer, msg.seq, bytes);
  return msg.seq;
}

void SlimEndpoint::AppendToBatch(NodeId peer, uint32_t session_id, uint64_t seq,
                                 const MessageBody& body) {
  Batch& batch = batches_[peer];
  if (!batch.items.empty() && batch.session_id != session_id) {
    FlushBatch(peer);  // one session per batch keeps the compressed header tiny
  }
  BatchItem item;
  item.type = TypeOfBody(body);
  item.seq = seq;
  item.payload = SerializeMessageBody(body);
  const size_t item_bytes = kBatchItemHeaderBytes + item.payload.size();
  if (kBatchHeaderBytes + batch.bytes + item_bytes > static_cast<size_t>(kMtuBytes)) {
    FlushBatch(peer);
  }
  Batch& fresh = batches_[peer];
  fresh.session_id = session_id;
  fresh.items.push_back(std::move(item));
  fresh.bytes += item_bytes;
  ++stats_.messages_batched;
  if (fresh.flush_event == kInvalidEventId) {
    fresh.flush_event = fabric_->simulator()->Schedule(options_.batch_delay,
                                                       [this, peer] { FlushBatch(peer); });
  }
}

void SlimEndpoint::FlushBatch(NodeId peer) {
  const auto it = batches_.find(peer);
  if (it == batches_.end() || it->second.items.empty()) {
    return;
  }
  Batch batch = std::move(it->second);
  batches_.erase(it);
  if (batch.flush_event != kInvalidEventId) {
    fabric_->simulator()->Cancel(batch.flush_event);
  }
  ByteWriter w;
  w.U8(kBatchMagic);
  w.U32(batch.session_id);
  w.U16(static_cast<uint16_t>(batch.items.size()));
  for (const BatchItem& item : batch.items) {
    w.U8(static_cast<uint8_t>(item.type));
    w.U16(static_cast<uint16_t>(item.payload.size()));
    w.U64(item.seq);
    w.Bytes(item.payload);
  }
  Datagram dgram;
  dgram.src = self_;
  dgram.dst = peer;
  dgram.payload = w.Take();
  ++stats_.batches_sent;
  ++stats_.fragments_sent;
  fabric_->Send(std::move(dgram));
}

void SlimEndpoint::OnBatchDatagram(const Datagram& dgram) {
  ByteReader r(dgram.payload);
  r.U8();  // magic, already checked
  const uint32_t session_id = r.U32();
  const uint16_t count = r.U16();
  for (uint16_t i = 0; i < count; ++i) {
    const auto type = static_cast<MessageType>(r.U8());
    const uint16_t len = r.U16();
    const uint64_t seq = r.U64();
    const std::vector<uint8_t> payload = r.Bytes(len);
    if (!r.ok()) {
      ++stats_.reassembly_failures;
      return;
    }
    auto body = ParseMessageBody(type, payload);
    if (!body.has_value()) {
      ++stats_.reassembly_failures;
      return;
    }
    // Re-frame and route through the common delivery path (dedup, NACK tracking).
    Message msg;
    msg.session_id = session_id;
    msg.seq = seq;
    msg.body = std::move(*body);
    DeliverMessage(SerializeMessage(msg), dgram.src);
  }
}

void SlimEndpoint::SendSerialized(NodeId peer, uint64_t msg_seq,
                                  const std::vector<uint8_t>& bytes) {
  const size_t frag_count = std::max<size_t>(1, (bytes.size() + kMaxFragmentPayload - 1) /
                                                    kMaxFragmentPayload);
  SLIM_CHECK(frag_count <= 0xffff);
  for (size_t i = 0; i < frag_count; ++i) {
    const size_t offset = i * kMaxFragmentPayload;
    const size_t len = std::min(kMaxFragmentPayload, bytes.size() - offset);
    ByteWriter w;
    w.U8(kFragmentMagic);
    w.U16(static_cast<uint16_t>(i));
    w.U16(static_cast<uint16_t>(frag_count));
    w.U64(msg_seq);
    w.Bytes(std::span<const uint8_t>(bytes).subspan(offset, len));
    Datagram dgram;
    dgram.src = self_;
    dgram.dst = peer;
    dgram.payload = w.Take();
    ++stats_.fragments_sent;
    fabric_->Send(std::move(dgram));
  }
}

void SlimEndpoint::OnDatagram(Datagram dgram) {
  if (!dgram.payload.empty() && dgram.payload[0] == kBatchMagic) {
    OnBatchDatagram(dgram);
    return;
  }
  ByteReader r(dgram.payload);
  if (r.U8() != kFragmentMagic) {
    ++stats_.reassembly_failures;
    return;
  }
  const uint16_t index = r.U16();
  const uint16_t count = r.U16();
  const uint64_t msg_seq = r.U64();
  if (!r.ok() || count == 0 || index >= count) {
    ++stats_.reassembly_failures;
    return;
  }
  ++stats_.fragments_received;
  std::vector<uint8_t> data = r.Bytes(r.remaining());

  if (count == 1) {
    DeliverMessage(std::move(data), dgram.src);
    return;
  }

  const auto key = std::make_pair(dgram.src, msg_seq);
  Reassembly& ctx = reasm_[key];
  if (ctx.frag_count == 0) {
    ctx.frag_count = count;
    ctx.fragments.resize(count);
  }
  if (ctx.frag_count != count) {
    ++stats_.reassembly_failures;
    reasm_.erase(key);
    return;
  }
  if (!ctx.fragments[index].has_value()) {
    ctx.fragments[index] = std::move(data);
    ++ctx.received;
  }
  if (ctx.received == ctx.frag_count) {
    std::vector<uint8_t> whole;
    for (auto& frag : ctx.fragments) {
      whole.insert(whole.end(), frag->begin(), frag->end());
    }
    reasm_.erase(key);
    DeliverMessage(std::move(whole), dgram.src);
  } else if (reasm_.size() > options_.max_reassembly) {
    reasm_.erase(reasm_.begin());
  }
}

void SlimEndpoint::DeliverMessage(std::vector<uint8_t> bytes, NodeId from) {
  std::optional<Message> msg = ParseMessage(bytes);
  if (!msg.has_value()) {
    ++stats_.reassembly_failures;
    return;
  }
  if (std::holds_alternative<NackMsg>(msg->body)) {
    HandleNack(std::get<NackMsg>(msg->body), from);
    return;
  }
  if (msg->seq != 0) {
    auto& delivered = recent_delivered_[from];
    if (delivered.count(msg->seq) > 0) {
      ++stats_.duplicate_messages;
      return;  // Idempotent replay: already applied, drop quietly.
    }
    delivered.insert(msg->seq);
    while (delivered.size() > 1024) {
      delivered.erase(delivered.begin());
    }
    PeerRecvState& state = recv_state_[from];
    if (msg->seq > state.max_seq) {
      // Sequences start at 1, so anything between the last maximum and this message was
      // lost (or is still in flight; a spurious NACK is harmless, replay is idempotent).
      for (uint64_t s = state.max_seq + 1; s < msg->seq && state.missing.size() < 512; ++s) {
        state.missing.insert(s);
      }
      state.max_seq = msg->seq;
    } else {
      state.missing.erase(msg->seq);
    }
    if (options_.enable_nack) {
      MaybeSendNack(from, msg->session_id, state);
    }
  }
  ++stats_.messages_received;
  if (handler_) {
    handler_(*msg, from);
  }
}

void SlimEndpoint::MaybeSendNack(NodeId peer, uint32_t session_id, PeerRecvState& state) {
  // Give up on sequences that have fallen out of any plausible replay history; the display
  // stream is self-correcting (a later full repaint supersedes lost updates).
  while (!state.missing.empty() &&
         *state.missing.begin() + options_.replay_history < state.max_seq) {
    state.missing.erase(state.missing.begin());
  }
  if (state.missing.empty()) {
    return;
  }
  const SimTime now = fabric_->simulator()->now();
  if (now - state.last_nack_at < Milliseconds(5)) {
    return;  // Rate-limit: one outstanding request per RTT-ish window.
  }
  state.last_nack_at = now;
  // Request the oldest contiguous missing range.
  const uint64_t first = *state.missing.begin();
  uint64_t last = first;
  for (auto it = std::next(state.missing.begin());
       it != state.missing.end() && *it == last + 1; ++it) {
    last = *it;
  }
  ++stats_.nacks_sent;
  Send(peer, session_id, NackMsg{first, last});
}

void SlimEndpoint::HandleNack(const NackMsg& nack, NodeId from) {
  for (const auto& [seq, bytes] : history_) {
    if (seq >= nack.first_seq && seq <= nack.last_seq) {
      ++stats_.replays_sent;
      SendSerialized(from, seq, bytes);
    }
  }
}

}  // namespace slim
