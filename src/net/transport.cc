#include "src/net/transport.h"

#include <algorithm>

#include "src/obs/latency_audit.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/protocol/wire.h"
#include "src/util/check.h"

namespace slim {

namespace {

constexpr uint8_t kFragmentMagic = 0x5f;
constexpr uint8_t kBatchMagic = 0x5e;
// Every datagram: magic, then a u32 FNV-1a checksum of everything after the checksum field.
constexpr size_t kChecksumBytes = 4;
// Fragment datagram: magic, checksum, index, count, msg_seq.
constexpr size_t kFragmentHeaderBytes = 1 + kChecksumBytes + 2 + 2 + 8;
constexpr size_t kMaxFragmentPayload =
    static_cast<size_t>(kMtuBytes) - kFragmentHeaderBytes;
// Batch datagram: magic, checksum, session, item count; per item: type, payload length, seq.
constexpr size_t kBatchHeaderBytes = 1 + kChecksumBytes + 4 + 2;
constexpr size_t kBatchItemHeaderBytes = 1 + 2 + 8;
// Only messages small enough to share a datagram with at least one sibling are batched.
constexpr size_t kMaxBatchableBody = 500;
// Delivered seqs remembered per peer for duplicate suppression; older seqs fall below the
// dedup floor and are rejected wholesale.
constexpr size_t kDedupWindow = 1024;
// Consecutive no-progress NACKs of one range before the receiver gives it up entirely.
constexpr int kNackMaxStrikes = 6;

// Stamps the checksum into a fully assembled datagram whose layout is
// [magic][checksum placeholder][covered bytes...].
std::vector<uint8_t> SealDatagram(ByteWriter w) {
  std::vector<uint8_t> bytes = w.Take();
  const uint32_t sum = Fnv1a32(std::span<const uint8_t>(bytes).subspan(1 + kChecksumBytes));
  for (size_t i = 0; i < kChecksumBytes; ++i) {
    bytes[1 + i] = static_cast<uint8_t>(sum >> (8 * i));
  }
  return bytes;
}

}  // namespace

SlimEndpoint::SlimEndpoint(Fabric* fabric, NodeId self, EndpointOptions options)
    : fabric_(fabric), self_(self), options_(options) {
  SLIM_CHECK(fabric != nullptr);
  fabric_->SetReceiver(self_, [this](Datagram dgram) { OnDatagram(std::move(dgram)); });
}

bool SlimEndpoint::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = true;
  const auto bind = [&](const char* name, const int64_t* cell) {
    ok = registry->BindCounter(prefix + "." + name, cell) && ok;
  };
  bind("messages_sent", &stats_.messages_sent);
  bind("messages_batched", &stats_.messages_batched);
  bind("batches_sent", &stats_.batches_sent);
  bind("messages_received", &stats_.messages_received);
  bind("duplicate_messages", &stats_.duplicate_messages);
  bind("bytes_sent", &stats_.bytes_sent);
  bind("fragments_sent", &stats_.fragments_sent);
  bind("fragments_received", &stats_.fragments_received);
  bind("reassembly_failures", &stats_.reassembly_failures);
  bind("nacks_sent", &stats_.nacks_sent);
  bind("replays_sent", &stats_.replays_sent);
  bind("datagrams_corrupted", &stats_.datagrams_corrupted);
  bind("reassembly_timeouts", &stats_.reassembly_timeouts);
  bind("nack_backoffs", &stats_.nack_backoffs);
  bind("seq_syncs_sent", &stats_.seq_syncs_sent);
  bind("seq_syncs_received", &stats_.seq_syncs_received);
  return ok;
}

void SlimEndpoint::NoteMissing(PeerRecvState& state, uint64_t seq) {
  // First-noticed times feed both the tracer's replay-stall spans and the latency audit's
  // replay-stage accounting; record them when either consumer is installed.
  if (Tracer::Global() != nullptr || LatencyAudit::Global() != nullptr) {
    state.missing_since.emplace(seq, fabric_->simulator()->now());
  }
}

void SlimEndpoint::ResolveMissing(PeerRecvState& state, uint64_t seq, const char* reason) {
  if (state.missing_since.empty()) {
    return;
  }
  const auto it = state.missing_since.find(seq);
  if (it == state.missing_since.end()) {
    return;
  }
  const SimTime now = fabric_->simulator()->now();
  if (Tracer* tracer = Tracer::Global()) {
    tracer->Complete(it->second, now - it->second, "transport.replay_stall", "transport",
                     kTraceTidTransportBase + static_cast<int>(self_),
                     {{"seq", JsonValue(static_cast<int64_t>(seq))},
                      {"reason", JsonValue(reason)}});
  }
  if (LatencyAudit* audit = LatencyAudit::Global()) {
    // We are the receiving endpoint: the (self, seq) key is how the audit mapped the
    // departed command, and a give-up reason breaches its input event immediately.
    audit->NoteReplayResolved(self_, seq, it->second, now, reason);
  }
  state.missing_since.erase(it);
}

uint64_t SlimEndpoint::Send(NodeId peer, uint32_t session_id, MessageBody body) {
  if (dead_) {
    return 0;  // a killed server emits nothing
  }
  Message msg;
  msg.session_id = session_id;
  // NACKs and seq-sync notices are control traffic: unsequenced (seq 0), never replayed,
  // never batched — they must not themselves enter the loss-tracking they exist to serve.
  const bool is_nack = std::holds_alternative<NackMsg>(body) ||
                       std::holds_alternative<SeqSyncMsg>(body);
  msg.seq = is_nack ? 0 : ++next_seq_[peer];
  msg.body = std::move(body);
  const std::vector<uint8_t> bytes = SerializeMessage(msg);
  ++stats_.messages_sent;
  stats_.bytes_sent += static_cast<int64_t>(bytes.size());
  if (Tracer* tracer = Tracer::Global(); tracer != nullptr && !is_nack) {
    tracer->Instant(fabric_->simulator()->now(), "transport.send", "transport",
                    kTraceTidTransportBase + static_cast<int>(self_),
                    {{"seq", JsonValue(static_cast<int64_t>(msg.seq))},
                     {"bytes", JsonValue(static_cast<int64_t>(bytes.size()))}});
  }
  if (!is_nack) {
    // Replay history stores the full framing so a NACKed message replays standalone even if
    // it was originally batched.
    auto& history = history_[peer];
    history.emplace_back(msg.seq, bytes);
    while (history.size() > options_.replay_history) {
      history.pop_front();
    }
  }
  if (options_.enable_batching && !is_nack) {
    if (bytes.size() - kMessageHeaderBytes <= kMaxBatchableBody) {
      AppendToBatch(peer, session_id, msg.seq, msg.body);
      return msg.seq;
    }
    // A large message bypasses the batch; anything still held must go first so display
    // commands arrive in the order they were issued.
    FlushBatch(peer);
  }
  SendSerialized(peer, msg.seq, bytes);
  return msg.seq;
}

void SlimEndpoint::AppendToBatch(NodeId peer, uint32_t session_id, uint64_t seq,
                                 const MessageBody& body) {
  Batch& batch = batches_[peer];
  if (!batch.items.empty() && batch.session_id != session_id) {
    FlushBatch(peer);  // one session per batch keeps the compressed header tiny
  }
  BatchItem item;
  item.type = TypeOfBody(body);
  item.seq = seq;
  item.payload = SerializeMessageBody(body);
  const size_t item_bytes = kBatchItemHeaderBytes + item.payload.size();
  if (kBatchHeaderBytes + batch.bytes + item_bytes > static_cast<size_t>(kMtuBytes)) {
    FlushBatch(peer);
  }
  Batch& fresh = batches_[peer];
  fresh.session_id = session_id;
  fresh.items.push_back(std::move(item));
  fresh.bytes += item_bytes;
  ++stats_.messages_batched;
  if (fresh.flush_event == kInvalidEventId) {
    fresh.flush_event = fabric_->simulator()->Schedule(options_.batch_delay,
                                                       [this, peer] { FlushBatch(peer); });
  }
}

void SlimEndpoint::FlushBatch(NodeId peer) {
  const auto it = batches_.find(peer);
  if (it == batches_.end() || it->second.items.empty()) {
    return;
  }
  Batch batch = std::move(it->second);
  batches_.erase(it);
  if (batch.flush_event != kInvalidEventId) {
    fabric_->simulator()->Cancel(batch.flush_event);
  }
  ByteWriter w;
  w.U8(kBatchMagic);
  w.U32(0);  // checksum placeholder, filled by SealDatagram
  w.U32(batch.session_id);
  w.U16(static_cast<uint16_t>(batch.items.size()));
  for (const BatchItem& item : batch.items) {
    w.U8(static_cast<uint8_t>(item.type));
    w.U16(static_cast<uint16_t>(item.payload.size()));
    w.U64(item.seq);
    w.Bytes(item.payload);
  }
  Datagram dgram;
  dgram.src = self_;
  dgram.dst = peer;
  dgram.payload = SealDatagram(std::move(w));
  ++stats_.batches_sent;
  ++stats_.fragments_sent;
  fabric_->Send(std::move(dgram));
}

void SlimEndpoint::OnBatchDatagram(const Datagram& dgram, std::span<const uint8_t> body) {
  ByteReader r(body);
  const uint32_t session_id = r.U32();
  const uint16_t count = r.U16();
  for (uint16_t i = 0; i < count; ++i) {
    const auto type = static_cast<MessageType>(r.U8());
    const uint16_t len = r.U16();
    const uint64_t seq = r.U64();
    const std::vector<uint8_t> payload = r.Bytes(len);
    if (!r.ok()) {
      ++stats_.reassembly_failures;
      return;
    }
    auto parsed = ParseMessageBody(type, payload);
    if (!parsed.has_value()) {
      ++stats_.reassembly_failures;
      return;
    }
    // Re-frame and route through the common delivery path (dedup, NACK tracking).
    Message msg;
    msg.session_id = session_id;
    msg.seq = seq;
    msg.body = std::move(*parsed);
    DeliverMessage(SerializeMessage(msg), dgram.src);
  }
  if (r.remaining() != 0) {
    // Trailing bytes a well-formed sender never produces; flag rather than ignore.
    ++stats_.reassembly_failures;
  }
}

void SlimEndpoint::SendSerialized(NodeId peer, uint64_t msg_seq,
                                  const std::vector<uint8_t>& bytes) {
  const size_t frag_count = std::max<size_t>(1, (bytes.size() + kMaxFragmentPayload - 1) /
                                                    kMaxFragmentPayload);
  SLIM_CHECK(frag_count <= 0xffff);
  for (size_t i = 0; i < frag_count; ++i) {
    const size_t offset = i * kMaxFragmentPayload;
    const size_t len = std::min(kMaxFragmentPayload, bytes.size() - offset);
    ByteWriter w;
    w.U8(kFragmentMagic);
    w.U32(0);  // checksum placeholder, filled by SealDatagram
    w.U16(static_cast<uint16_t>(i));
    w.U16(static_cast<uint16_t>(frag_count));
    w.U64(msg_seq);
    w.Bytes(std::span<const uint8_t>(bytes).subspan(offset, len));
    Datagram dgram;
    dgram.src = self_;
    dgram.dst = peer;
    dgram.payload = SealDatagram(std::move(w));
    ++stats_.fragments_sent;
    fabric_->Send(std::move(dgram));
  }
}

void SlimEndpoint::OnDatagram(Datagram dgram) {
  if (dead_) {
    return;  // a killed server hears nothing
  }
  // Framing gate: everything after [magic][checksum] must hash to the checksum. A flipped
  // bit, a chopped tail or a stray datagram is counted and dropped here, never parsed.
  ByteReader r(dgram.payload);
  const uint8_t magic = r.U8();
  if (!r.ok() || (magic != kFragmentMagic && magic != kBatchMagic)) {
    ++stats_.datagrams_corrupted;
    return;
  }
  const uint32_t checksum = r.U32();
  if (!r.ok() || Fnv1a32(r.Rest()) != checksum) {
    ++stats_.datagrams_corrupted;
    return;
  }
  if (magic == kBatchMagic) {
    OnBatchDatagram(dgram, r.Rest());
  } else {
    OnFragmentDatagram(dgram, r.Rest());
  }
}

void SlimEndpoint::OnFragmentDatagram(const Datagram& dgram, std::span<const uint8_t> body) {
  ByteReader r(body);
  const uint16_t index = r.U16();
  const uint16_t count = r.U16();
  const uint64_t msg_seq = r.U64();
  if (!r.ok() || count == 0 || index >= count) {
    ++stats_.reassembly_failures;
    return;
  }
  ++stats_.fragments_received;
  std::vector<uint8_t> data = r.Bytes(r.remaining());

  if (count == 1) {
    DeliverMessage(std::move(data), dgram.src);
    return;
  }

  const auto key = std::make_pair(dgram.src, msg_seq);
  Reassembly& ctx = reasm_[key];
  if (ctx.frag_count == 0) {
    ctx.frag_count = count;
    ctx.fragments.resize(count);
  }
  if (ctx.frag_count != count) {
    ++stats_.reassembly_failures;
    reasm_.erase(key);
    return;
  }
  ctx.last_update = fabric_->simulator()->now();
  if (!ctx.fragments[index].has_value()) {
    ctx.fragments[index] = std::move(data);
    ++ctx.received;
  }
  if (ctx.received == ctx.frag_count) {
    std::vector<uint8_t> whole;
    for (auto& frag : ctx.fragments) {
      whole.insert(whole.end(), frag->begin(), frag->end());
    }
    reasm_.erase(key);
    DeliverMessage(std::move(whole), dgram.src);
    return;
  }
  if (reasm_.size() > options_.max_reassembly) {
    EvictOldestReassembly();
  }
  ArmReassemblySweep();
}

void SlimEndpoint::EvictOldestReassembly() {
  auto oldest = reasm_.begin();
  for (auto it = std::next(reasm_.begin()); it != reasm_.end(); ++it) {
    if (it->second.last_update < oldest->second.last_update) {
      oldest = it;
    }
  }
  ++stats_.reassembly_failures;
  const auto key = oldest->first;
  reasm_.erase(oldest);
  NackAbandonedMessage(key.first, key.second);
}

void SlimEndpoint::SweepReassembly() {
  reasm_sweep_event_ = kInvalidEventId;
  const SimTime now = fabric_->simulator()->now();
  std::vector<std::pair<NodeId, uint64_t>> expired;
  for (auto it = reasm_.begin(); it != reasm_.end();) {
    if (now - it->second.last_update >= options_.reassembly_timeout) {
      ++stats_.reassembly_timeouts;
      expired.push_back(it->first);
      it = reasm_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [src, msg_seq] : expired) {
    NackAbandonedMessage(src, msg_seq);
  }
  ArmReassemblySweep();
}

void SlimEndpoint::NackAbandonedMessage(NodeId src, uint64_t msg_seq) {
  // A context died with fragments still missing, so `msg_seq` is a message we know exists
  // and know we do not have. Recovery is normally driven by later deliveries exposing the
  // gap, but when the abandoned message was itself the *last* traffic in flight (the tail
  // of a burst, or a replay that arrived partially) nothing else will ever trigger the
  // NACK — so trigger it here. Unsequenced control traffic (seq 0) is not replayable.
  if (!options_.enable_nack || msg_seq == 0) {
    return;
  }
  PeerRecvState& state = recv_state_[src];
  if (state.missing.insert(msg_seq).second) {
    NoteMissing(state, msg_seq);
  }
  MaybeSendNack(src, 0, state);
}

void SlimEndpoint::ArmReassemblySweep() {
  if (reasm_sweep_event_ != kInvalidEventId || reasm_.empty() ||
      options_.reassembly_timeout <= 0) {
    return;
  }
  SimTime oldest = reasm_.begin()->second.last_update;
  for (const auto& [key, ctx] : reasm_) {
    oldest = std::min(oldest, ctx.last_update);
  }
  const SimTime now = fabric_->simulator()->now();
  const SimDuration delay = std::max<SimDuration>(0, oldest + options_.reassembly_timeout - now);
  reasm_sweep_event_ =
      fabric_->simulator()->Schedule(delay, [this] { SweepReassembly(); });
}

void SlimEndpoint::DeliverMessage(std::vector<uint8_t> bytes, NodeId from) {
  std::optional<Message> msg = ParseMessage(bytes);
  if (!msg.has_value()) {
    ++stats_.reassembly_failures;
    return;
  }
  if (std::holds_alternative<NackMsg>(msg->body)) {
    HandleNack(std::get<NackMsg>(msg->body), from);
    return;
  }
  if (std::holds_alternative<SeqSyncMsg>(msg->body)) {
    HandleSeqSync(std::get<SeqSyncMsg>(msg->body), from);
    return;
  }
  if (msg->seq != 0) {
    DedupWindow& dedup = recent_delivered_[from];
    // At or below the floor means the seq was already delivered and then aged out of the
    // window; without the floor, a sufficiently stale replay would be applied twice.
    if (msg->seq <= dedup.floor || dedup.seen.count(msg->seq) > 0) {
      ++stats_.duplicate_messages;
      // An abandoned duplicate context may have re-flagged this seq as missing; it is not.
      PeerRecvState& dup_state = recv_state_[from];
      ResolveMissing(dup_state, msg->seq, "replayed");
      dup_state.missing.erase(msg->seq);
      return;  // Idempotent replay: already applied, drop quietly.
    }
    dedup.seen.insert(msg->seq);
    while (dedup.seen.size() > kDedupWindow) {
      dedup.floor = *dedup.seen.begin();
      dedup.seen.erase(dedup.seen.begin());
    }
    PeerRecvState& state = recv_state_[from];
    if (msg->seq > state.max_seq) {
      // Sequences start at 1, so anything between the last maximum and this message was
      // lost (or is still in flight; a spurious NACK is harmless, replay is idempotent).
      for (uint64_t s = state.max_seq + 1; s < msg->seq && state.missing.size() < 512; ++s) {
        state.missing.insert(s);
        NoteMissing(state, s);
      }
      state.max_seq = msg->seq;
    } else {
      ResolveMissing(state, msg->seq, "replayed");
      state.missing.erase(msg->seq);
    }
    if (options_.enable_nack) {
      MaybeSendNack(from, msg->session_id, state);
    }
  }
  ++stats_.messages_received;
  if (handler_) {
    handler_(*msg, from);
  }
}

void SlimEndpoint::MaybeSendNack(NodeId peer, uint32_t session_id, PeerRecvState& state) {
  // Give up on sequences that have fallen out of any plausible replay history; the display
  // stream is self-correcting (a later full repaint supersedes lost updates).
  while (!state.missing.empty() &&
         *state.missing.begin() + options_.replay_history < state.max_seq) {
    ResolveMissing(state, *state.missing.begin(), "gave_up_history");
    state.missing.erase(state.missing.begin());
  }
  if (state.missing.empty()) {
    state.nack_gate = options_.nack_backoff_min;
    state.last_nack_first = 0;
    state.nack_strikes = 0;
    return;
  }
  if (state.nack_gate <= 0) {
    state.nack_gate = options_.nack_backoff_min;
  }
  const SimTime now = fabric_->simulator()->now();
  if (now - state.last_nack_at < state.nack_gate) {
    // Gate: one outstanding request per back-off window. Arm a retry at gate expiry so
    // recovery does not depend on another delivery happening to land after the window.
    ArmNackRetry(peer, state);
    return;
  }
  // Request the oldest contiguous missing range.
  const uint64_t first = *state.missing.begin();
  uint64_t last = first;
  for (auto it = std::next(state.missing.begin());
       it != state.missing.end() && *it == last + 1; ++it) {
    last = *it;
  }
  if (first == state.last_nack_first) {
    // If fragments of the requested message are still streaming in, the replay is working;
    // re-NACKing now would just provoke a duplicate replay. Slide the clock to the last
    // fragment arrival and check again one gate later (if reassembly stalls for a full
    // gate, the strike logic below resumes).
    const auto ctx = reasm_.find(std::make_pair(peer, first));
    if (ctx != reasm_.end() && now - ctx->second.last_update < state.nack_gate) {
      state.last_nack_at = std::max(state.last_nack_at, ctx->second.last_update);
      ArmNackRetry(peer, state);
      return;
    }
    // The previous NACK for this very range produced no progress — it or its replay was
    // lost, or the peer cannot replay it. Widen the gate (bounded) instead of hammering,
    // and after kNackMaxStrikes fruitless tries give the range up for good: the display
    // stream is self-correcting (a later full repaint supersedes lost updates), and an
    // unreplayable range must not keep the retry timer alive forever.
    state.nack_gate = std::min(state.nack_gate * 2, options_.nack_backoff_max);
    ++stats_.nack_backoffs;
    if (++state.nack_strikes >= kNackMaxStrikes) {
      for (uint64_t s = first; s <= last; ++s) {
        ResolveMissing(state, s, "gave_up_strikes");
      }
      state.missing.erase(state.missing.lower_bound(first), state.missing.upper_bound(last));
      state.last_nack_first = 0;
      state.nack_strikes = 0;
      state.nack_gate = options_.nack_backoff_min;
      if (!state.missing.empty()) {
        ArmNackRetry(peer, state);  // move on to the next range
      }
      return;
    }
  } else {
    state.nack_gate = options_.nack_backoff_min;
    state.last_nack_first = first;
    state.nack_strikes = 0;
  }
  state.last_nack_at = now;
  ++stats_.nacks_sent;
  if (Tracer* tracer = Tracer::Global()) {
    tracer->Instant(now, "transport.nack", "transport",
                    kTraceTidTransportBase + static_cast<int>(self_),
                    {{"first", JsonValue(static_cast<int64_t>(first))},
                     {"last", JsonValue(static_cast<int64_t>(last))},
                     {"strikes", JsonValue(int64_t{state.nack_strikes})}});
  }
  Send(peer, session_id, NackMsg{first, last});
  // If the NACK or its entire replay is lost there will be no delivery to re-trigger us;
  // the retry re-examines the range once the gate reopens.
  ArmNackRetry(peer, state);
}

void SlimEndpoint::ArmNackRetry(NodeId peer, PeerRecvState& state) {
  if (state.nack_retry_event != kInvalidEventId) {
    return;
  }
  const SimTime now = fabric_->simulator()->now();
  const SimDuration delay =
      std::max<SimDuration>(0, state.last_nack_at + state.nack_gate - now);
  state.nack_retry_event = fabric_->simulator()->Schedule(delay, [this, peer] {
    PeerRecvState& st = recv_state_[peer];
    st.nack_retry_event = kInvalidEventId;
    if (options_.enable_nack) {
      MaybeSendNack(peer, 0, st);
    }
  });
}

void SlimEndpoint::EnsureSendSeqAtLeast(NodeId peer, uint64_t floor) {
  uint64_t& next = next_seq_[peer];
  if (next >= floor) {
    return;
  }
  const SeqSkip skip{next + 1, floor + 1};
  next = floor;
  std::vector<SeqSkip>& skips = seq_skips_[peer];
  skips.push_back(skip);
  if (skips.size() > 16) {  // ancient jumps have long since synced; bound the state
    skips.erase(skips.begin());
  }
  ++stats_.seq_syncs_sent;
  Send(peer, 0, SeqSyncMsg{skip.first_skipped, skip.first_valid});
}

void SlimEndpoint::HandleNack(const NackMsg& nack, NodeId from) {
  int64_t replayed = 0;
  if (const auto hist = history_.find(from); hist != history_.end()) {
    for (const auto& [seq, bytes] : hist->second) {
      if (seq >= nack.first_seq && seq <= nack.last_seq) {
        ++stats_.replays_sent;
        ++replayed;
        SendSerialized(from, seq, bytes);
      }
    }
  }
  // The peer is asking for seqs inside a skipped range: the sync notice that would have
  // told it those seqs never existed was lost. Re-send it — this, not replay, is what
  // resolves that part of the gap.
  if (const auto it = seq_skips_.find(from); it != seq_skips_.end()) {
    for (const SeqSkip& skip : it->second) {
      if (nack.first_seq < skip.first_valid && nack.last_seq >= skip.first_skipped) {
        ++stats_.seq_syncs_sent;
        Send(from, 0, SeqSyncMsg{skip.first_skipped, skip.first_valid});
      }
    }
  }
  if (Tracer* tracer = Tracer::Global()) {
    tracer->Instant(fabric_->simulator()->now(), "transport.replay", "transport",
                    kTraceTidTransportBase + static_cast<int>(self_),
                    {{"first", JsonValue(static_cast<int64_t>(nack.first_seq))},
                     {"last", JsonValue(static_cast<int64_t>(nack.last_seq))},
                     {"replayed", JsonValue(replayed)}});
  }
}

void SlimEndpoint::HandleSeqSync(const SeqSyncMsg& sync, NodeId from) {
  ++stats_.seq_syncs_received;
  PeerRecvState& state = recv_state_[from];
  // Seqs in [first_skipped, first_valid) were never sent: they are not losses. Anything
  // older stays in the missing set — those were real sends and remain NACKable.
  for (auto it = state.missing.lower_bound(sync.first_skipped_seq);
       it != state.missing.end() && *it < sync.first_valid_seq;) {
    ResolveMissing(state, *it, "seq_sync");
    it = state.missing.erase(it);
  }
  // Advance the high-water mark over the skipped range so a delivery of first_valid (or
  // later) does not re-book the range as missing all over again.
  if (sync.first_valid_seq > 0) {
    state.max_seq = std::max(state.max_seq, sync.first_valid_seq - 1);
  }
}

}  // namespace slim
