// SLIM message transport over the unreliable datagram fabric.
//
// Mirrors the Sun Ray 1's UDP/IP transport (Section 2.2): no reliable stream, no
// stop-and-wait. Messages are fragmented to the MTU, reassembled by (source, sequence), and
// sequence gaps trigger a NACK asking the sender to replay from its bounded history —
// application-specific recovery that works because every SLIM message is idempotent.
//
// Every datagram carries a framing checksum, so a fabric that corrupts or truncates bytes
// (see FaultProfile) produces counted drops — which the NACK path then repairs — rather
// than garbage pixels. Partial reassembly contexts expire on a timeout, duplicate
// suppression extends below its window via an eviction floor, and NACKs for a range that
// keeps failing back off exponentially.

#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/protocol/messages.h"

namespace slim {

class MetricRegistry;

struct TransportStats {
  int64_t messages_sent = 0;
  int64_t messages_batched = 0;
  int64_t batches_sent = 0;
  int64_t messages_received = 0;
  int64_t duplicate_messages = 0;
  int64_t bytes_sent = 0;  // serialized message bytes, before datagram framing
  int64_t fragments_sent = 0;
  int64_t fragments_received = 0;
  int64_t reassembly_failures = 0;
  int64_t nacks_sent = 0;
  int64_t replays_sent = 0;
  // Inbound datagrams rejected by the framing checksum (or carrying an unknown magic):
  // corruption and truncation land here instead of being parsed as protocol bytes.
  int64_t datagrams_corrupted = 0;
  // Partial reassembly contexts abandoned because no fragment arrived within
  // reassembly_timeout (the rest of the message was lost; NACK replay re-sends it whole).
  int64_t reassembly_timeouts = 0;
  // Times the NACK gate widened because a re-NACK for the same missing range was needed
  // (the previous NACK or its replay was itself lost).
  int64_t nack_backoffs = 0;
  // Seq-sync notices (a migrated session raised the send-seq floor): copies sent — the
  // jump itself plus every NACK that asked for never-emitted seqs — and copies received.
  int64_t seq_syncs_sent = 0;
  int64_t seq_syncs_received = 0;
};

// The stats one SlimEndpoint exposes; alias kept distinct from the struct name so call
// sites read as what they are (per-endpoint counters, not global transport totals).
using EndpointStats = TransportStats;

struct EndpointOptions {
  // How many recent messages the sender retains for NACK replay.
  size_t replay_history = 512;
  // Reassembly contexts kept live before the oldest (by last fragment arrival) is evicted.
  // Sized so a full-screen repaint burst over a lossy fabric (hundreds of messages, a third
  // of them waiting on one replayed fragment) does not thrash the table.
  size_t max_reassembly = 256;
  // A partial reassembly context that has not seen a fragment for this long is abandoned
  // and counted in reassembly_timeouts; without it, a single lost fragment would pin its
  // context (and its memory) forever.
  SimDuration reassembly_timeout = Milliseconds(250);
  // Sequence tracking / NACK generation on gaps (can be disabled for ablation).
  bool enable_nack = true;
  // NACK pacing: the first NACK for a missing range waits nack_backoff_min since the last
  // NACK; every re-NACK of the same range doubles the gate up to nack_backoff_max, so a
  // peer that cannot replay (history evicted, path black-holed) is not NACK-hammered.
  SimDuration nack_backoff_min = Milliseconds(5);
  SimDuration nack_backoff_max = Milliseconds(40);

  // Section 5.4's proposed low-bandwidth optimizations, off by default (the Sun Ray 1 did
  // not ship them): small messages bound for the same peer are held for up to batch_delay
  // and coalesced into one datagram with compressed 11-byte per-message headers, instead of
  // one 20-byte header plus ~59 bytes of datagram/fragment framing each.
  bool enable_batching = false;
  SimDuration batch_delay = Milliseconds(5);
};

class SlimEndpoint {
 public:
  // The handler receives fully reassembled, parsed messages. `from` is the fabric node that
  // sent them.
  using MessageHandler = std::function<void(const Message&, NodeId from)>;

  SlimEndpoint(Fabric* fabric, NodeId self, EndpointOptions options = {});

  NodeId node() const { return self_; }
  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }

  // Serializes, fragments and sends. Assigns the next sequence number for (peer) unless the
  // body is itself a NACK (control traffic is unsequenced: seq 0). Returns the seq used.
  uint64_t Send(NodeId peer, uint32_t session_id, MessageBody body);

  const TransportStats& stats() const { return stats_; }

  // The per-peer send sequence counter's current value (the seq of the last sequenced
  // message sent toward `peer`; 0 when nothing has been sent). Checkpoints capture this
  // as the session's seq watermark.
  uint64_t send_seq(NodeId peer) const {
    const auto it = next_seq_.find(peer);
    return it == next_seq_.end() ? 0 : it->second;
  }

  // Raises the next send seq toward `peer` to at least `floor`. The migration path calls
  // this after restoring a session whose source had already used seqs up to the
  // checkpoint's watermark toward the same console, keeping the session's seq story
  // monotonic across servers. The skipped range [old next + 1, floor] was never put on
  // the wire, so the peer is told via SeqSyncMsg — otherwise its gap tracker would book
  // every skipped seq as a loss and burn the NACK budget (and its give-up strikes) on
  // messages that cannot be replayed, starving repair of real gaps alongside them.
  void EnsureSendSeqAtLeast(NodeId peer, uint64_t floor);

  // Crash-failover fault injection: a dead endpoint drops every outbound send and ignores
  // every inbound datagram, exactly as a powered-off server would. ServerPool::KillServer
  // sets this; nothing un-sets it (a SLIM server does not reboot mid-run).
  void set_dead(bool dead) { dead_ = dead; }
  bool dead() const { return dead_; }

  // Registers every TransportStats counter with `registry` as `<prefix>.<field>` (e.g.
  // "transport.nacks_sent"). The registry reads the same cells stats() exposes, so the two
  // views can never disagree. Returns false if any name was rejected (duplicate prefix).
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "transport");

 private:
  struct Reassembly {
    uint16_t frag_count = 0;
    std::vector<std::optional<std::vector<uint8_t>>> fragments;
    size_t received = 0;
    SimTime last_update = 0;  // last fragment arrival; drives timeout + eviction order
  };

  void OnDatagram(Datagram dgram);
  void OnFragmentDatagram(const Datagram& dgram, std::span<const uint8_t> body);
  void DeliverMessage(std::vector<uint8_t> bytes, NodeId from);
  void SendSerialized(NodeId peer, uint64_t msg_seq, const std::vector<uint8_t>& bytes);
  void HandleNack(const NackMsg& nack, NodeId from);
  void HandleSeqSync(const SeqSyncMsg& sync, NodeId from);

  // --- Reassembly-context hygiene ---
  // Evicts the context with the oldest last_update when reasm_ exceeds max_reassembly.
  void EvictOldestReassembly();
  // Drops every context idle for reassembly_timeout or longer, then re-arms the sweep
  // timer for the oldest survivor (partial contexts expire even if traffic goes quiet).
  void SweepReassembly();
  void ArmReassemblySweep();
  // Marks an abandoned (timed-out or evicted) partial message as missing and NACKs it, so
  // recovery restarts even when no further deliveries would expose the gap.
  void NackAbandonedMessage(NodeId src, uint64_t msg_seq);

  // --- Batching (Section 5.4 optimizations) ---
  struct BatchItem {
    MessageType type = MessageType::kPing;
    uint64_t seq = 0;
    std::vector<uint8_t> payload;
  };
  struct Batch {
    uint32_t session_id = 0;
    std::vector<BatchItem> items;
    size_t bytes = 0;
    EventId flush_event = kInvalidEventId;
  };
  void AppendToBatch(NodeId peer, uint32_t session_id, uint64_t seq, const MessageBody& body);
  void FlushBatch(NodeId peer);
  void OnBatchDatagram(const Datagram& dgram, std::span<const uint8_t> body);

  Fabric* fabric_;
  NodeId self_;
  EndpointOptions options_;
  MessageHandler handler_;
  TransportStats stats_;
  bool dead_ = false;

  // Per-peer receive-side gap tracking: highest seq seen plus the set of missing seqs below
  // it. Missing ranges are re-NACKed (back-off-gated) on later deliveries, so a lost NACK or
  // a lost replay gets another chance — the paper's "application-specific error recovery".
  struct PeerRecvState {
    uint64_t max_seq = 0;
    std::set<uint64_t> missing;
    SimTime last_nack_at = -kSecond;
    SimDuration nack_gate = 0;        // current back-off gate; 0 = not yet initialized
    uint64_t last_nack_first = 0;     // start of the last range NACKed (0 = none yet)
    int nack_strikes = 0;             // consecutive NACKs of the same range without progress
    EventId nack_retry_event = kInvalidEventId;  // pending gate-expiry retry, if any
    // When the sim-time tracer is active: when each missing seq was first noticed, so its
    // resolution (replay arrival or give-up) can be emitted as a replay-stall span. Empty
    // whenever tracing is off.
    std::map<uint64_t, SimTime> missing_since;
  };

  // Per-peer duplicate suppression: the window of recently delivered seqs plus the floor —
  // the highest seq ever evicted from the window. A replay at or below the floor was
  // necessarily delivered once already (it entered and aged out of the window), so it is a
  // duplicate even though the window itself no longer remembers it.
  struct DedupWindow {
    std::set<uint64_t> seen;
    uint64_t floor = 0;
  };

  // --- Sim-time tracing of the replay path (no-ops when Tracer::Global() is null) ---
  // Records when `seq` entered the missing set, so ResolveMissing can emit a span.
  void NoteMissing(PeerRecvState& state, uint64_t seq);
  // Emits a "transport.replay_stall" span covering first-noticed -> now. `reason` is
  // "replayed" (the gap was filled) or a give-up cause.
  void ResolveMissing(PeerRecvState& state, uint64_t seq, const char* reason);

  void MaybeSendNack(NodeId peer, uint32_t session_id, PeerRecvState& state);
  // Schedules a MaybeSendNack retry for when the back-off gate reopens (single pending
  // event per peer), so a lost NACK/replay is retried even with no further inbound traffic.
  void ArmNackRetry(NodeId peer, PeerRecvState& state);

  // Seq ranges toward a peer that were skipped by EnsureSendSeqAtLeast (never emitted).
  // A SeqSyncMsg for each is sent at jump time and replayed whenever a NACK asks for
  // seqs inside one — the notice itself is unsequenced, so this is its loss recovery.
  struct SeqSkip {
    uint64_t first_skipped = 0;  // first seq never emitted
    uint64_t first_valid = 0;    // next seq that really goes on the wire
  };
  std::map<NodeId, std::vector<SeqSkip>> seq_skips_;

  std::map<NodeId, uint64_t> next_seq_;  // per-peer send sequence
  std::map<NodeId, PeerRecvState> recv_state_;
  std::map<std::pair<NodeId, uint64_t>, Reassembly> reasm_;
  EventId reasm_sweep_event_ = kInvalidEventId;
  // Replay history is PER PEER: seqs are only unique per (peer, direction), so a shared
  // pool would let one peer's NACK range replay another peer's bytes — and the bogus
  // replay's seq would poison the requester's dedup window, permanently masking the real
  // message. Each peer gets its own replay_history-bounded window.
  std::map<NodeId, std::deque<std::pair<uint64_t, std::vector<uint8_t>>>> history_;
  std::map<NodeId, DedupWindow> recent_delivered_;
  std::map<NodeId, Batch> batches_;  // pending per-peer batches when batching is enabled
};

}  // namespace slim

#endif  // SRC_NET_TRANSPORT_H_
