// SLIM message transport over the unreliable datagram fabric.
//
// Mirrors the Sun Ray 1's UDP/IP transport (Section 2.2): no reliable stream, no
// stop-and-wait. Messages are fragmented to the MTU, reassembled by (source, sequence), and
// sequence gaps trigger a NACK asking the sender to replay from its bounded history —
// application-specific recovery that works because every SLIM message is idempotent.

#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/net/fabric.h"
#include "src/protocol/messages.h"

namespace slim {

struct TransportStats {
  int64_t messages_sent = 0;
  int64_t messages_batched = 0;
  int64_t batches_sent = 0;
  int64_t messages_received = 0;
  int64_t duplicate_messages = 0;
  int64_t bytes_sent = 0;  // serialized message bytes, before datagram framing
  int64_t fragments_sent = 0;
  int64_t fragments_received = 0;
  int64_t reassembly_failures = 0;
  int64_t nacks_sent = 0;
  int64_t replays_sent = 0;
};

struct EndpointOptions {
  // How many recent messages the sender retains for NACK replay.
  size_t replay_history = 512;
  // Reassembly contexts kept live before the oldest is abandoned.
  size_t max_reassembly = 64;
  // Sequence tracking / NACK generation on gaps (can be disabled for ablation).
  bool enable_nack = true;

  // Section 5.4's proposed low-bandwidth optimizations, off by default (the Sun Ray 1 did
  // not ship them): small messages bound for the same peer are held for up to batch_delay
  // and coalesced into one datagram with compressed 11-byte per-message headers, instead of
  // one 20-byte header plus ~59 bytes of datagram/fragment framing each.
  bool enable_batching = false;
  SimDuration batch_delay = Milliseconds(5);
};

class SlimEndpoint {
 public:
  // The handler receives fully reassembled, parsed messages. `from` is the fabric node that
  // sent them.
  using MessageHandler = std::function<void(const Message&, NodeId from)>;

  SlimEndpoint(Fabric* fabric, NodeId self, EndpointOptions options = {});

  NodeId node() const { return self_; }
  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }

  // Serializes, fragments and sends. Assigns the next sequence number for (peer) unless the
  // body is itself a NACK (control traffic is unsequenced: seq 0). Returns the seq used.
  uint64_t Send(NodeId peer, uint32_t session_id, MessageBody body);

  const TransportStats& stats() const { return stats_; }

 private:
  struct Reassembly {
    uint16_t frag_count = 0;
    std::vector<std::optional<std::vector<uint8_t>>> fragments;
    size_t received = 0;
  };

  void OnDatagram(Datagram dgram);
  void DeliverMessage(std::vector<uint8_t> bytes, NodeId from);
  void SendSerialized(NodeId peer, uint64_t msg_seq, const std::vector<uint8_t>& bytes);
  void HandleNack(const NackMsg& nack, NodeId from);

  // --- Batching (Section 5.4 optimizations) ---
  struct BatchItem {
    MessageType type = MessageType::kPing;
    uint64_t seq = 0;
    std::vector<uint8_t> payload;
  };
  struct Batch {
    uint32_t session_id = 0;
    std::vector<BatchItem> items;
    size_t bytes = 0;
    EventId flush_event = kInvalidEventId;
  };
  void AppendToBatch(NodeId peer, uint32_t session_id, uint64_t seq, const MessageBody& body);
  void FlushBatch(NodeId peer);
  void OnBatchDatagram(const Datagram& dgram);

  Fabric* fabric_;
  NodeId self_;
  EndpointOptions options_;
  MessageHandler handler_;
  TransportStats stats_;

  // Per-peer receive-side gap tracking: highest seq seen plus the set of missing seqs below
  // it. Missing ranges are re-NACKed (rate-limited) on later deliveries, so a lost NACK or a
  // lost replay gets another chance — the paper's "application-specific error recovery".
  struct PeerRecvState {
    uint64_t max_seq = 0;
    std::set<uint64_t> missing;
    SimTime last_nack_at = -kSecond;
  };

  void MaybeSendNack(NodeId peer, uint32_t session_id, PeerRecvState& state);

  std::map<NodeId, uint64_t> next_seq_;  // per-peer send sequence
  std::map<NodeId, PeerRecvState> recv_state_;
  std::map<std::pair<NodeId, uint64_t>, Reassembly> reasm_;
  std::deque<std::pair<uint64_t, std::vector<uint8_t>>> history_;  // (seq, serialized)
  std::map<NodeId, std::set<uint64_t>> recent_delivered_;   // duplicate suppression window
  std::map<NodeId, Batch> batches_;  // pending per-peer batches when batching is enabled
};

}  // namespace slim

#endif  // SRC_NET_TRANSPORT_H_
