// NEON kernel tier — a stub behind the full KernelOps interface. On AArch64 builds it
// registers as a distinct tier (so dispatch, the SLIM_KERNELS override, the registry
// gauge and the parity tests all exercise the ARM path) but currently forwards every
// kernel to the scalar reference; filling in vector bodies is purely local to this file.
// The compare-shaped kernels (scan/pack/diff) map onto vceqq_u32 + narrowing the same
// way the SSE2 tier maps onto cmpeq + movemask, and the YUV kernel onto vmlaq_s32.
//
// Bit-identity with scalar is trivially true today; keep it true when vectorizing.

#include "src/codec/kernels/kernels.h"
#include "src/codec/kernels/kernels_internal.h"

namespace slim {
namespace {

// Compiled on every ISA: the forwards are plain scalar calls, so the table needs no
// NEON intrinsics. GetNeonKernels() below decides whether dispatch may pick it.
const KernelOps kNeonKernels{
    KernelTier::kNeon,   RowHashScalar,      ScanColorsScalar,
    PackBitmapRowScalar, RowDiffSpanScalar,  RgbToYuvRowScalar,
};

}  // namespace

const KernelOps* GetNeonKernelsForTest() { return &kNeonKernels; }

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

const KernelOps* GetNeonKernels() { return &kNeonKernels; }

#else  // !__ARM_NEON

const KernelOps* GetNeonKernels() { return nullptr; }

#endif

}  // namespace slim
