// Scalar reference implementations of every kernel, shared by the tier translation
// units: the scalar tier exports them verbatim, and the SIMD tiers call them for heads,
// tails and rare-path fallbacks so a vector body plus this tail is still bit-identical
// to the pure scalar run.
//
// Everything lives in an anonymous namespace ON PURPOSE: each tier .cc is compiled with
// its own ISA flags (-mavx2 only for kernels_avx2.cc), and an ordinary inline function
// defined in a header would be merged across those TUs by the linker — potentially
// keeping the copy compiled with AVX2 codegen and crashing a non-AVX2 machine inside
// what looks like scalar code. Internal linkage gives every TU its own copy compiled
// with that TU's flags. Do not "clean this up" into extern inline.

#ifndef SRC_CODEC_KERNELS_KERNELS_INTERNAL_H_
#define SRC_CODEC_KERNELS_KERNELS_INTERNAL_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>

#include "src/codec/kernels/kernels.h"

namespace slim {
namespace {

// movemask-style instructions put pixel 0 in bit 0, but bitmap rows are packed MSB-first
// (pixel 0 in bit 7), so the SIMD packers run each 8-pixel mask through this table.
constexpr std::array<uint8_t, 256> kBitReverse = [] {
  std::array<uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    uint8_t r = 0;
    for (int bit = 0; bit < 8; ++bit) {
      r = static_cast<uint8_t>(r | (((i >> bit) & 1) << (7 - bit)));
    }
    table[static_cast<size_t>(i)] = r;
  }
  return table;
}();

// ---- Row hash (the 4-lane FNV-1a from src/codec/row_hash.h) -------------------------

constexpr uint64_t kFnvPrime = 0x100000001b3ull;  // == (1 << 40) + 0x1b3
constexpr uint64_t kHashLane0 = 0xcbf29ce484222325ull;
constexpr uint64_t kHashLane1 = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kHashLane2 = 0xbf58476d1ce4e5b9ull;
constexpr uint64_t kHashLane3 = 0x94d049bb133111ebull;

// Lane fold + SplitMix64-style avalanche; shared verbatim by every tier.
inline uint64_t RowHashFinish(uint64_t h0, uint64_t h1, uint64_t h2, uint64_t h3) {
  uint64_t h = (((h0 ^ h1) * kFnvPrime ^ h2) * kFnvPrime ^ h3) * kFnvPrime;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

inline uint64_t RowHashScalar(const Pixel* row, size_t n) {
  uint64_t h0 = kHashLane0;
  uint64_t h1 = kHashLane1;
  uint64_t h2 = kHashLane2;
  uint64_t h3 = kHashLane3;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    h0 = (h0 ^ row[i]) * kFnvPrime;
    h1 = (h1 ^ row[i + 1]) * kFnvPrime;
    h2 = (h2 ^ row[i + 2]) * kFnvPrime;
    h3 = (h3 ^ row[i + 3]) * kFnvPrime;
  }
  for (; i < n; ++i) {
    h0 = (h0 ^ row[i]) * kFnvPrime;
  }
  return RowHashFinish(h0, h1, h2, h3);
}

// ---- Two-color scan ------------------------------------------------------------------

inline void ScanColorsScalar(const Pixel* row, size_t n, ColorScan* scan) {
  for (size_t i = 0; i < n; ++i) {
    const Pixel p = row[i];
    if (scan->distinct == 0) {
      scan->first = p;
      scan->distinct = 1;
    } else if (p != scan->first) {
      if (scan->distinct == 1) {
        scan->second = p;
        scan->distinct = 2;
      } else if (p != scan->second) {
        scan->distinct = 3;
        return;
      }
    }
  }
}

// ---- Bitmap row packing --------------------------------------------------------------

inline void PackBitmapRowScalar(const Pixel* row, size_t n, Pixel fg, uint8_t* out) {
  size_t x = 0;
  const size_t stride = (n + 7) / 8;
  for (size_t byte = 0; byte < stride; ++byte) {
    const size_t lanes = std::min<size_t>(8, n - x);
    uint8_t packed = 0;
    for (size_t bit = 0; bit < lanes; ++bit, ++x) {
      if (row[x] == fg) {
        packed |= static_cast<uint8_t>(1u << (7 - bit));
      }
    }
    out[byte] = packed;
  }
}

// ---- Row diff span -------------------------------------------------------------------

inline bool RowDiffSpanScalar(const Pixel* a, const Pixel* b, size_t n, int32_t* lo,
                              int32_t* hi) {
  if (n == 0 || std::memcmp(a, b, n * sizeof(Pixel)) == 0) {
    return false;
  }
  size_t first = 0;
  while (a[first] == b[first]) {
    ++first;
  }
  size_t last = n;  // exclusive
  while (a[last - 1] == b[last - 1]) {
    --last;
  }
  *lo = static_cast<int32_t>(first);
  *hi = static_cast<int32_t>(last);
  return true;
}

// ---- RGB -> YUV (fixed point) --------------------------------------------------------
//
// BT.601 full-range coefficients scaled by 2^20, rounded half-up. The luma weights sum
// to exactly 2^20 (white -> 255 exactly) and the chroma weight pairs each sum to
// exactly 2^19 (gray -> 128 exactly). Y is always in [0, 255]; U/V can reach 256 at the
// saturated corners (e.g. pure blue: 128 + 0.5*255 = 255.5 rounds up), hence the min.

constexpr int32_t kYuvShift = 20;
constexpr int32_t kYuvHalf = 1 << (kYuvShift - 1);
constexpr int32_t kYuvBias = 128 << kYuvShift;
constexpr int32_t kYR = 313524, kYG = 615514, kYB = 119538;     // sum == 1 << 20
constexpr int32_t kUR = 176933, kUG = 347355, kUB = 524288;     // kUR + kUG == kUB
constexpr int32_t kVR = 524288, kVG = 439026, kVB = 85262;      // kVG + kVB == kVR

inline void RgbToYuvScalarOne(Pixel p, uint8_t* y, uint8_t* u, uint8_t* v) {
  const int32_t r = PixelR(p);
  const int32_t g = PixelG(p);
  const int32_t b = PixelB(p);
  *y = static_cast<uint8_t>((kYR * r + kYG * g + kYB * b + kYuvHalf) >> kYuvShift);
  *u = static_cast<uint8_t>(
      std::min(255, (kYuvBias + kUB * b - kUR * r - kUG * g + kYuvHalf) >> kYuvShift));
  *v = static_cast<uint8_t>(
      std::min(255, (kYuvBias + kVR * r - kVG * g - kVB * b + kYuvHalf) >> kYuvShift));
}

inline void RgbToYuvRowScalar(const Pixel* rgb, size_t n, uint8_t* y, uint8_t* u,
                              uint8_t* v) {
  for (size_t i = 0; i < n; ++i) {
    RgbToYuvScalarOne(rgb[i], y + i, u + i, v + i);
  }
}

}  // namespace
}  // namespace slim

#endif  // SRC_CODEC_KERNELS_KERNELS_INTERNAL_H_
