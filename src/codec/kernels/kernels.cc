#include "src/codec/kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/codec/kernels/kernels_internal.h"

namespace slim {

namespace {

const KernelOps kScalarKernels{
    KernelTier::kScalar,    RowHashScalar,      ScanColorsScalar,
    PackBitmapRowScalar,    RowDiffSpanScalar,  RgbToYuvRowScalar,
};

// Resolved-once dispatch table. Resolution races are benign: every racer computes the
// same value, and the pointer is only ever swapped afterwards by ScopedKernelsForTest.
std::atomic<const KernelOps*> g_kernels{nullptr};

const KernelOps* Resolve() {
  const KernelTier best = BestSupportedTier();
  const char* value = std::getenv("SLIM_KERNELS");
  if (value == nullptr || *value == '\0') {
    return KernelsForTier(best);
  }
  const std::optional<KernelTier> forced = KernelTierFromName(value);
  if (!forced.has_value()) {
    std::fprintf(stderr,
                 "slim: ignoring SLIM_KERNELS='%s' (want scalar, sse2, avx2 or neon); "
                 "using %s\n",
                 value, KernelTierName(best));
    return KernelsForTier(best);
  }
  const KernelOps* ops = KernelsForTier(*forced);
  if (ops == nullptr) {
    std::fprintf(stderr, "slim: SLIM_KERNELS=%s is not supported on this CPU; using %s\n",
                 KernelTierName(*forced), KernelTierName(best));
    return KernelsForTier(best);
  }
  return ops;
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kSse2:
      return "sse2";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<KernelTier> KernelTierFromName(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (lower == "scalar") {
    return KernelTier::kScalar;
  }
  if (lower == "sse2") {
    return KernelTier::kSse2;
  }
  if (lower == "avx2") {
    return KernelTier::kAvx2;
  }
  if (lower == "neon") {
    return KernelTier::kNeon;
  }
  return std::nullopt;
}

const KernelOps* KernelsForTier(KernelTier tier) {
  switch (tier) {
    case KernelTier::kScalar:
      return &kScalarKernels;
    case KernelTier::kSse2:
      return GetSse2Kernels();
    case KernelTier::kAvx2:
      return GetAvx2Kernels();
    case KernelTier::kNeon:
      return GetNeonKernels();
  }
  return nullptr;
}

KernelTier BestSupportedTier() {
  if (GetAvx2Kernels() != nullptr) {
    return KernelTier::kAvx2;
  }
  if (GetNeonKernels() != nullptr) {
    return KernelTier::kNeon;
  }
  if (GetSse2Kernels() != nullptr) {
    return KernelTier::kSse2;
  }
  return KernelTier::kScalar;
}

const KernelOps& Kernels() {
  const KernelOps* ops = g_kernels.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = Resolve();
    g_kernels.store(ops, std::memory_order_release);
  }
  return *ops;
}

ScopedKernelsForTest::ScopedKernelsForTest(const KernelOps* ops) {
  saved_ = &Kernels();  // force resolution so the restore puts back a real table
  g_kernels.store(ops, std::memory_order_release);
}

ScopedKernelsForTest::~ScopedKernelsForTest() {
  g_kernels.store(saved_, std::memory_order_release);
}

}  // namespace slim
