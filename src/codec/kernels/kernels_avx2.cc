// AVX2 kernel tier. This is the only translation unit compiled with -mavx2 (see
// src/CMakeLists.txt), so nothing here may be called before the runtime CPUID check in
// GetAvx2Kernels() — the dispatch table is the only export.
//
// Bit-identity with the scalar reference is the contract (see kernels.h). Each kernel
// vectorizes the regular body and hands heads/tails/rare paths to the scalar reference
// from kernels_internal.h, which is compiled into THIS translation unit (internal
// linkage) and therefore may legally use AVX2 codegen here.

#include "src/codec/kernels/kernels.h"
#include "src/codec/kernels/kernels_internal.h"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace slim {
namespace {

// ---- Row hash ------------------------------------------------------------------------
//
// Deliberately the scalar reference. AVX2 has no 64-bit multiply, and a vector FNV step
// built from the prime's decomposition ((1 << 40) + 0x1b3, i.e. two 32x32 widening
// multiplies plus shifts per step) was measured at 0.4x the scalar loop on this
// workload: the hash is one serial dependency chain per lane, and four independent
// scalar imuls pipeline better than the longer vector chain. bench_kernels keeps
// reporting the per-tier numbers, so a future attempt has a gate to beat.

// ---- Two-color scan ------------------------------------------------------------------

// 8-bit mask with bit j set iff pixel j matches either color.
inline int MatchMask8(const Pixel* p, __m256i c1, __m256i c2) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i ok =
      _mm256_or_si256(_mm256_cmpeq_epi32(v, c1), _mm256_cmpeq_epi32(v, c2));
  return _mm256_movemask_ps(_mm256_castsi256_ps(ok));
}

void ScanColorsAvx2(const Pixel* row, size_t n, ColorScan* scan) {
  size_t i = 0;
  if (n == 0 || scan->distinct >= 3) {
    return;
  }
  if (scan->distinct == 0) {
    scan->first = row[0];
    scan->distinct = 1;
    i = 1;
  }
  // Vector-scan against the current color set; on the first pixel outside it, promote
  // that pixel exactly as the scalar loop would, re-broadcast, and continue.
  for (;;) {
    const __m256i c1 = _mm256_set1_epi32(static_cast<int32_t>(scan->first));
    const __m256i c2 = _mm256_set1_epi32(
        static_cast<int32_t>(scan->distinct == 2 ? scan->second : scan->first));
    bool mismatch = false;
    for (; i + 8 <= n; i += 8) {
      const int mask = MatchMask8(row + i, c1, c2);
      if (mask != 0xff) {
        i += static_cast<size_t>(__builtin_ctz(~static_cast<unsigned>(mask) & 0xffu));
        mismatch = true;
        break;
      }
    }
    if (!mismatch) {
      ScanColorsScalar(row + i, n - i, scan);  // < 8 pixels left
      return;
    }
    if (scan->distinct == 1) {
      scan->second = row[i];
      scan->distinct = 2;
      ++i;
      continue;
    }
    scan->distinct = 3;  // third distinct color: early-exit, like scalar
    return;
  }
}

// ---- Bitmap row packing --------------------------------------------------------------

void PackBitmapRowAvx2(const Pixel* row, size_t n, Pixel fg, uint8_t* out) {
  const __m256i f = _mm256_set1_epi32(static_cast<int32_t>(fg));
  size_t x = 0;
  size_t byte = 0;
  for (; x + 8 <= n; x += 8, ++byte) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + x));
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, f)));
    out[byte] = kBitReverse[static_cast<size_t>(mask)];
  }
  if (x < n) {
    PackBitmapRowScalar(row + x, n - x, fg, out + byte);
  }
}

// ---- Row diff span -------------------------------------------------------------------

// 8-bit mask with bit j set iff a[j] == b[j].
inline int EqMask8(const Pixel* a, const Pixel* b) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb)));
}

bool RowDiffSpanAvx2(const Pixel* a, const Pixel* b, size_t n, int32_t* lo, int32_t* hi) {
  size_t first = n;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int mask = EqMask8(a + i, b + i);
    if (mask != 0xff) {
      first = i + static_cast<size_t>(__builtin_ctz(~static_cast<unsigned>(mask) & 0xffu));
      break;
    }
  }
  if (first == n) {
    for (; i < n; ++i) {
      if (a[i] != b[i]) {
        first = i;
        break;
      }
    }
    if (first == n) {
      return false;
    }
  }
  // A mismatch exists at `first`, so the backward scan always terminates: the vector
  // block that contains `first` cannot be all-equal.
  size_t last = first + 1;
  for (size_t j = n;;) {
    if (j >= 8) {
      const int mask = EqMask8(a + j - 8, b + j - 8);
      if (mask == 0xff) {
        j -= 8;
        continue;
      }
      const unsigned mismatches = ~static_cast<unsigned>(mask) & 0xffu;
      last = j - 8 + static_cast<size_t>(31 - __builtin_clz(mismatches)) + 1;
      break;
    }
    if (a[j - 1] != b[j - 1]) {
      last = j;
      break;
    }
    --j;
  }
  *lo = static_cast<int32_t>(first);
  *hi = static_cast<int32_t>(last);
  return true;
}

// ---- RGB -> YUV ----------------------------------------------------------------------

// Low byte of each of the 8 32-bit lanes, stored as 8 contiguous bytes.
inline void StoreLowBytes8(uint8_t* dst, __m256i v32) {
  const __m256i shuffle = _mm256_setr_epi8(
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
      0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
  const __m256i packed = _mm256_shuffle_epi8(v32, shuffle);
  const __m256i gathered =
      _mm256_permutevar8x32_epi32(packed, _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0));
  _mm_storel_epi64(reinterpret_cast<__m128i*>(dst), _mm256_castsi256_si128(gathered));
}

void RgbToYuvRowAvx2(const Pixel* rgb, size_t n, uint8_t* y, uint8_t* u, uint8_t* v) {
  const __m256i byte_mask = _mm256_set1_epi32(0xff);
  const __m256i yr = _mm256_set1_epi32(kYR), yg = _mm256_set1_epi32(kYG),
                yb = _mm256_set1_epi32(kYB);
  const __m256i ur = _mm256_set1_epi32(kUR), ug = _mm256_set1_epi32(kUG),
                ub = _mm256_set1_epi32(kUB);
  const __m256i vr = _mm256_set1_epi32(kVR), vg = _mm256_set1_epi32(kVG),
                vb = _mm256_set1_epi32(kVB);
  const __m256i bias_half = _mm256_set1_epi32(kYuvBias + kYuvHalf);
  const __m256i half = _mm256_set1_epi32(kYuvHalf);
  const __m256i max255 = _mm256_set1_epi32(255);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i px = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rgb + i));
    const __m256i r = _mm256_and_si256(_mm256_srli_epi32(px, 16), byte_mask);
    const __m256i g = _mm256_and_si256(_mm256_srli_epi32(px, 8), byte_mask);
    const __m256i b = _mm256_and_si256(px, byte_mask);
    // All three accumulators stay non-negative (see the bounds note in
    // kernels_internal.h), so a logical shift is the scalar arithmetic shift.
    const __m256i yv = _mm256_srli_epi32(
        _mm256_add_epi32(_mm256_add_epi32(_mm256_mullo_epi32(r, yr),
                                          _mm256_mullo_epi32(g, yg)),
                         _mm256_add_epi32(_mm256_mullo_epi32(b, yb), half)),
        kYuvShift);
    const __m256i uv = _mm256_srli_epi32(
        _mm256_sub_epi32(_mm256_sub_epi32(_mm256_add_epi32(bias_half,
                                                           _mm256_mullo_epi32(b, ub)),
                                          _mm256_mullo_epi32(r, ur)),
                         _mm256_mullo_epi32(g, ug)),
        kYuvShift);
    const __m256i vv = _mm256_srli_epi32(
        _mm256_sub_epi32(_mm256_sub_epi32(_mm256_add_epi32(bias_half,
                                                           _mm256_mullo_epi32(r, vr)),
                                          _mm256_mullo_epi32(g, vg)),
                         _mm256_mullo_epi32(b, vb)),
        kYuvShift);
    StoreLowBytes8(y + i, yv);
    StoreLowBytes8(u + i, _mm256_min_epi32(uv, max255));
    StoreLowBytes8(v + i, _mm256_min_epi32(vv, max255));
  }
  if (i < n) {
    RgbToYuvRowScalar(rgb + i, n - i, y + i, u + i, v + i);
  }
}

const KernelOps kAvx2Kernels{
    KernelTier::kAvx2,  RowHashScalar,    ScanColorsAvx2,
    PackBitmapRowAvx2,  RowDiffSpanAvx2,  RgbToYuvRowAvx2,
};

}  // namespace

const KernelOps* GetAvx2Kernels() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

}  // namespace slim

#else  // !(__AVX2__ && x86)

namespace slim {
const KernelOps* GetAvx2Kernels() { return nullptr; }
}  // namespace slim

#endif
