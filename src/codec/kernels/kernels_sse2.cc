// SSE2 kernel tier — the baseline ISA on x86-64, so this tier is what an old or
// feature-masked x86 host gets. It accelerates the compare-shaped kernels (color scan,
// bitmap packing, row diffing), which map cleanly onto 4-lane cmpeq + movemask; the row
// hash (needs 64-bit multiplies) and the YUV conversion (needs 32-bit mullo, an SSE4.1
// instruction) stay on the scalar reference, where the compiler already does well.
//
// Same contract as every tier: bit-identical to scalar on all inputs.

#include "src/codec/kernels/kernels.h"
#include "src/codec/kernels/kernels_internal.h"

#if defined(__SSE2__) && (defined(__x86_64__) || defined(__i386__))

#include <emmintrin.h>

namespace slim {
namespace {

// 4-bit mask with bit j set iff pixel j matches either color.
inline int MatchMask4(const Pixel* p, __m128i c1, __m128i c2) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i ok = _mm_or_si128(_mm_cmpeq_epi32(v, c1), _mm_cmpeq_epi32(v, c2));
  return _mm_movemask_ps(_mm_castsi128_ps(ok));
}

void ScanColorsSse2(const Pixel* row, size_t n, ColorScan* scan) {
  size_t i = 0;
  if (n == 0 || scan->distinct >= 3) {
    return;
  }
  if (scan->distinct == 0) {
    scan->first = row[0];
    scan->distinct = 1;
    i = 1;
  }
  for (;;) {
    const __m128i c1 = _mm_set1_epi32(static_cast<int32_t>(scan->first));
    const __m128i c2 = _mm_set1_epi32(
        static_cast<int32_t>(scan->distinct == 2 ? scan->second : scan->first));
    bool mismatch = false;
    for (; i + 4 <= n; i += 4) {
      const int mask = MatchMask4(row + i, c1, c2);
      if (mask != 0xf) {
        i += static_cast<size_t>(__builtin_ctz(~static_cast<unsigned>(mask) & 0xfu));
        mismatch = true;
        break;
      }
    }
    if (!mismatch) {
      ScanColorsScalar(row + i, n - i, scan);  // < 4 pixels left
      return;
    }
    if (scan->distinct == 1) {
      scan->second = row[i];
      scan->distinct = 2;
      ++i;
      continue;
    }
    scan->distinct = 3;
    return;
  }
}

void PackBitmapRowSse2(const Pixel* row, size_t n, Pixel fg, uint8_t* out) {
  const __m128i f = _mm_set1_epi32(static_cast<int32_t>(fg));
  size_t x = 0;
  size_t byte = 0;
  for (; x + 8 <= n; x += 8, ++byte) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + x));
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + x + 4));
    const int m0 = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v0, f)));
    const int m1 = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v1, f)));
    out[byte] = kBitReverse[static_cast<size_t>(m0 | (m1 << 4))];
  }
  if (x < n) {
    PackBitmapRowScalar(row + x, n - x, fg, out + byte);
  }
}

// 4-bit mask with bit j set iff a[j] == b[j].
inline int EqMask4(const Pixel* a, const Pixel* b) {
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  return _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb)));
}

bool RowDiffSpanSse2(const Pixel* a, const Pixel* b, size_t n, int32_t* lo, int32_t* hi) {
  size_t first = n;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = EqMask4(a + i, b + i);
    if (mask != 0xf) {
      first = i + static_cast<size_t>(__builtin_ctz(~static_cast<unsigned>(mask) & 0xfu));
      break;
    }
  }
  if (first == n) {
    for (; i < n; ++i) {
      if (a[i] != b[i]) {
        first = i;
        break;
      }
    }
    if (first == n) {
      return false;
    }
  }
  // Terminates because the block containing `first` cannot be all-equal.
  size_t last = first + 1;
  for (size_t j = n;;) {
    if (j >= 4) {
      const int mask = EqMask4(a + j - 4, b + j - 4);
      if (mask == 0xf) {
        j -= 4;
        continue;
      }
      const unsigned mismatches = ~static_cast<unsigned>(mask) & 0xfu;
      last = j - 4 + static_cast<size_t>(31 - __builtin_clz(mismatches)) + 1;
      break;
    }
    if (a[j - 1] != b[j - 1]) {
      last = j;
      break;
    }
    --j;
  }
  *lo = static_cast<int32_t>(first);
  *hi = static_cast<int32_t>(last);
  return true;
}

const KernelOps kSse2Kernels{
    KernelTier::kSse2,  RowHashScalar,    ScanColorsSse2,
    PackBitmapRowSse2,  RowDiffSpanSse2,  RgbToYuvRowScalar,
};

}  // namespace

const KernelOps* GetSse2Kernels() {
  return __builtin_cpu_supports("sse2") ? &kSse2Kernels : nullptr;
}

}  // namespace slim

#else  // !(__SSE2__ && x86)

namespace slim {
const KernelOps* GetSse2Kernels() { return nullptr; }
}  // namespace slim

#endif
