// SIMD pixel-kernel layer with runtime CPU dispatch.
//
// Every per-pixel hot loop in the damage/encode/convert path (row hashing, two-color
// scanning, bitmap bit-packing, row diffing, RGB->YUV conversion) funnels through the
// function pointers in KernelOps. A tier is one complete implementation of that table:
// scalar (the portable reference), SSE2, AVX2, and a NEON stub that forwards to scalar
// until someone with ARM hardware fills it in. Dispatch is resolved exactly once, at
// first use, from CPUID plus the SLIM_KERNELS env override, and published through the
// metric registry as `codec.kernels.tier`.
//
// The load-bearing invariant: EVERY tier is bit-identical to the scalar reference on
// every input — same hash constants, same first/second color choice, same fixed-point
// YUV rounding. The encoder's wire output therefore does not depend on the machine the
// server runs on (or on SLIM_KERNELS), which keeps the PR 3/PR 4 stream-equality
// properties — identical bytes for every thread count — holding per kernel tier too.
// tests/kernels_test.cc fuzzes each tier against scalar across widths 1..257 and
// unaligned offsets; never add a tier function that "almost" matches.

#ifndef SRC_CODEC_KERNELS_KERNELS_H_
#define SRC_CODEC_KERNELS_KERNELS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/fb/framebuffer.h"

namespace slim {

enum class KernelTier : uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

const char* KernelTierName(KernelTier tier);

// Parses a SLIM_KERNELS value ("scalar", "sse2", "avx2", "neon", case-insensitive).
// Returns nullopt for anything else.
std::optional<KernelTier> KernelTierFromName(const std::string& name);

// Incremental state for the encoder's two-color classification. `distinct` saturates at
// 3 (meaning "more than two"); `first`/`second` are the first two distinct pixel values
// in scan order, exactly as the scalar loop would have picked them.
struct ColorScan {
  int distinct = 0;
  Pixel first = 0;
  Pixel second = 0;
};

struct KernelOps {
  KernelTier tier = KernelTier::kScalar;

  // The shared 4-lane FNV-1a row hash (see src/codec/row_hash.h for the algorithm and
  // why producers and consumers must agree on this one definition).
  uint64_t (*row_hash)(const Pixel* row, size_t n);

  // Feeds n pixels into `scan`, early-exiting as soon as distinct hits 3. Safe to call
  // row by row with the same state.
  void (*scan_colors)(const Pixel* row, size_t n, ColorScan* scan);

  // Packs one row to 1bpp MSB-first: bit (7 - i%8) of out[i/8] is 1 iff row[i] == fg.
  // Writes exactly (n+7)/8 bytes; trailing bits of the last byte are zero.
  void (*pack_bitmap_row)(const Pixel* row, size_t n, Pixel fg, uint8_t* out);

  // Returns false when a[0..n) == b[0..n); otherwise true with *lo / *hi set to the
  // first differing index and one past the last differing index.
  bool (*row_diff_span)(const Pixel* a, const Pixel* b, size_t n, int32_t* lo,
                        int32_t* hi);

  // Bulk BT.601 full-range RGB->YUV over one row, writing the three planes. Fixed-point
  // (20-bit coefficients, round-half-up) so every tier rounds identically; the
  // single-pixel RgbToYuv in src/color/yuv.cc uses the same arithmetic.
  void (*rgb_to_yuv_row)(const Pixel* rgb, size_t n, uint8_t* y, uint8_t* u, uint8_t* v);
};

// The dispatch table for `tier`, or nullptr when that tier is not compiled in or the
// CPU cannot execute it. KernelTier::kScalar never returns nullptr.
const KernelOps* KernelsForTier(KernelTier tier);

// The best tier this CPU supports (what dispatch picks absent SLIM_KERNELS).
KernelTier BestSupportedTier();

// The process-wide kernel table. First call resolves: SLIM_KERNELS forces a tier (with
// a warning + fallback to BestSupportedTier() when the value is unknown or the CPU
// lacks it); otherwise BestSupportedTier() wins. Thread-safe; the resolved table never
// changes afterwards except through ScopedKernelsForTest.
const KernelOps& Kernels();

// Test-only: overrides Kernels() for the scope of the object. Not safe while encoder
// worker pools or other threads are touching kernels concurrently — install it before
// spawning them (tests/kernels_test.cc uses it to prove wire-stream equality per tier).
class ScopedKernelsForTest {
 public:
  explicit ScopedKernelsForTest(const KernelOps* ops);
  ~ScopedKernelsForTest();
  ScopedKernelsForTest(const ScopedKernelsForTest&) = delete;
  ScopedKernelsForTest& operator=(const ScopedKernelsForTest&) = delete;

 private:
  const KernelOps* saved_;
};

// Per-tier tables, defined in their own translation units so only kernels_avx2.cc is
// compiled with -mavx2 (see src/CMakeLists.txt). Each returns nullptr when its ISA is
// not available to the build.
const KernelOps* GetSse2Kernels();
const KernelOps* GetAvx2Kernels();
const KernelOps* GetNeonKernels();

// The NEON tier's dispatch table regardless of the build ISA. The stub's bodies are all
// scalar forwards, so the table itself runs anywhere; only GetNeonKernels() gates it out
// of dispatch on non-ARM builds. Never returns nullptr. Exists so the parity matrix in
// tests/kernels_test.cc exercises the NEON table (via ScopedKernelsForTest) on every CI
// host instead of only on AArch64 — when the stub grows real vector bodies, this becomes
// ARM-only again and the test falls back to skipping off-ISA (see GetNeonKernels()).
const KernelOps* GetNeonKernelsForTest();

}  // namespace slim

#endif  // SRC_CODEC_KERNELS_KERNELS_H_
