// Shadow-frame damage refinement — the hash-accelerated damage pipeline.
//
// The server-side cost of the SLIM protocol is dominated by analyzing pixels to pick
// SET/BITMAP/FILL/COPY encodings (paper Section 4 / Table 4), and that cost is
// proportional to the damage area handed to the encoder. The damage sessions report is
// often over-broad: a full-window PutImage repaint of mostly-unchanged content, a
// RepaintAll of an idle screen, or a hint-less scroll that arrives as "everything
// changed". DamageTracker trims that damage to what actually changed before the encoder
// ever sees it.
//
// It keeps a shadow copy of the last-transmitted frame plus a 64-bit FNV-1a hash per row,
// both updated incrementally as damage is flushed. Refinement is three layers, cheapest
// first:
//   1. Row hashes: a damaged row whose current-frame hash equals the shadow's stored hash
//      is discarded with one 64-bit compare (after one linear hash of the row).
//   2. Span memcmp: a dirty row's changed extent [x_lo, x_hi] is found by pointer scans
//      over the row spans; runs of dirty rows merge into tight rects.
//   3. Scroll salvage: when a large damage block is the shadow frame shifted vertically
//      (DetectVerticalScroll's hash-indexed O(rows) pass against the shadow), the shift
//      is transmitted as one COPY command and only the residual diff is refined.
//
// The shadow is *server-side* soft state about what the console currently displays; the
// console itself stays stateless, exactly as the paper requires (DESIGN.md). Losing or
// distrusting the shadow (Invalidate) costs one full retransmit, nothing more.
//
// Threading: a tracker belongs to one session and is only touched from the session's
// owning thread. It runs before EncoderPool fan-out, so refinement does not perturb the
// pool's bit-identical-across-thread-counts contract — the pool just sees a smaller
// region.

#ifndef SRC_CODEC_DAMAGE_TRACKER_H_
#define SRC_CODEC_DAMAGE_TRACKER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/fb/framebuffer.h"
#include "src/fb/geometry.h"
#include "src/protocol/commands.h"

namespace slim {

// Resolves the damage-tracker toggle: SLIM_DAMAGE_TRACKER when set to a valid integer
// (0 disables, nonzero enables; warning on stderr for garbage), otherwise `fallback`.
bool DamageTrackerFromEnv(bool fallback);

class DamageTracker {
 public:
  DamageTracker(int32_t width, int32_t height);

  // Refines `damage` (whose rects must lie within bounds) to the sub-region whose pixels
  // differ from the shadow frame, then brings the shadow and its row hashes up to date
  // with `fb` over the whole damage region. The returned rects are pairwise disjoint,
  // contained in `damage`, and cover every differing pixel (property-tested in
  // tests/damage_tracker_test.cc).
  //
  // When scroll_out is non-null and scroll_max_shift > 0, the damage bounds are first
  // tested for a vertical scroll of the shadow; on a hit, one COPY command reproducing
  // the scroll is appended to scroll_out and applied to the shadow, so the refined
  // residual shrinks to the exposed strip. The caller must transmit scroll_out's commands
  // BEFORE the commands encoded from the refined region (the refinement is relative to
  // the post-copy shadow).
  //
  // While invalidated, refinement is suspended: damage passes through unrefined (the
  // shadow is synced from it), and the tracker revalidates once a damage region covering
  // the full frame has passed.
  Region Refine(const Framebuffer& fb, const Region& damage, int32_t scroll_max_shift = 0,
                std::vector<DisplayCommand>* scroll_out = nullptr);

  // Copies `rect` (clipped to bounds) from fb into the shadow without refining: the
  // caller transmitted the rect's new content out of band (direct FILL/COPY/CSCS
  // commands, which bypass the encoder).
  void SyncRect(const Framebuffer& fb, const Rect& rect);

  // Forgets what the remote end displays: the next full-frame Refine passes everything
  // through. Used on console attach (a fresh console's soft state is unknown) and for
  // loss-recovery resyncs (ServerSession::ForceRepaintAll), where trusting the shadow
  // would suppress the retransmission the caller is asking for.
  void Invalidate() { valid_ = false; }

  // Overwrites the shadow frame, its row hashes and the validity bit wholesale. This is
  // the checkpoint-restore path (src/server/checkpoint.cc): a migrated session must come
  // back with the exact shadow its source held, or the first post-migration Refine would
  // diff against the wrong "last transmitted" frame. `pixels` must hold width*height
  // entries and `hashes` height entries (checked).
  void RestoreShadow(std::span<const Pixel> pixels, std::span<const uint64_t> hashes,
                     bool valid);

  bool valid() const { return valid_; }
  const Framebuffer& shadow() const { return shadow_; }
  uint64_t row_hash(int32_t y) const { return row_hashes_[static_cast<size_t>(y)]; }

 private:
  // Recomputes row_hashes_[y] from the shadow's current contents.
  void RehashRow(int32_t y);
  // Copies rows [y0, y1) x columns [x0, x0+w) from fb into the shadow and rehashes them.
  void CopySpans(const Framebuffer& fb, int32_t y0, int32_t y1, int32_t x0, int32_t w);

  Framebuffer shadow_;
  std::vector<uint64_t> row_hashes_;
  bool valid_ = true;  // shadow starts black, matching a fresh console's framebuffer

  // Per-Refine scratch: lazily computed full-row hashes of the frame being refined,
  // kept as members so the hot path does not reallocate per flush.
  std::vector<uint64_t> fb_row_hashes_;
  std::vector<uint8_t> fb_row_hashed_;
};

}  // namespace slim

#endif  // SRC_CODEC_DAMAGE_TRACKER_H_
