#include "src/codec/encoder.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/codec/kernels/kernels.h"
#include "src/codec/row_hash.h"
#include "src/util/check.h"

namespace slim {

namespace {

// Classifies a rectangle's pixel population via the kernel layer's ColorScan: `first`
// and `second` are the first two distinct colors encountered in scan order (not the
// most common ones); for the bicolor regions BITMAP targets the two sets coincide, and
// for anything richer the scan bails out at distinct == 3 anyway.
//
// r must lie inside fb.bounds() — every caller analyzes bands/chunks that EncodeRect
// already clipped. Scanning row spans bounds-checks once per row, and a row that repeats
// the previous row byte-for-byte (solid panels, text leading, letterboxing) is skipped
// with one memcmp instead of being re-classified pixel by pixel.
ColorScan ScanColors(const Framebuffer& fb, const Rect& r) {
  const KernelOps& kernels = Kernels();
  ColorScan scan;
  const size_t row_bytes = static_cast<size_t>(r.w) * sizeof(Pixel);
  std::span<const Pixel> prev;
  for (int32_t y = r.y; y < r.bottom(); ++y) {
    const std::span<const Pixel> row = fb.Row(y, r.x, r.w);
    if (!prev.empty() && std::memcmp(row.data(), prev.data(), row_bytes) == 0) {
      continue;
    }
    kernels.scan_colors(row.data(), row.size(), &scan);
    if (scan.distinct >= 3) {
      return scan;
    }
    prev = row;
  }
  return scan;
}

// RowHash64 over one row span, treating pixels outside either framebuffer dimension as
// black (matching GetPixel's clipping semantics, which the scroll detector's contract
// inherits from the probe implementation). The out-of-bounds path materializes the span
// first so both paths hash the identical pixel sequence — a black-padded span must
// collide with a genuinely black row, exactly as pixel-by-pixel comparison would.
// `scratch` is caller-owned scratch for that padded span: scroll probing near frame
// edges calls this once per candidate row, and a per-call std::vector was a heap
// allocation inside the detector's hot loop.
uint64_t HashRowSpan(const Framebuffer& fb, int32_t y, int32_t x0, int32_t w,
                     std::vector<Pixel>* scratch) {
  if (y >= 0 && y < fb.height() && x0 >= 0 && x0 + w <= fb.width()) {
    return RowHash64(fb.Row(y, x0, w));
  }
  scratch->resize(static_cast<size_t>(w));  // reuses capacity across calls
  for (int32_t x = x0; x < x0 + w; ++x) {
    (*scratch)[static_cast<size_t>(x - x0)] = fb.GetPixel(x, y);
  }
  return RowHash64(*scratch);
}

// after(x, ya) == before(x, yb) for all x in [x0, x0+w)? memcmp when both row spans are in
// bounds (the overwhelmingly common case), GetPixel fallback otherwise.
bool RowSpansEqual(const Framebuffer& after, int32_t ya, const Framebuffer& before,
                   int32_t yb, int32_t x0, int32_t w) {
  const bool after_in = ya >= 0 && ya < after.height() && x0 >= 0 && x0 + w <= after.width();
  const bool before_in =
      yb >= 0 && yb < before.height() && x0 >= 0 && x0 + w <= before.width();
  if (after_in && before_in) {
    return std::memcmp(after.Row(ya, x0, w).data(), before.Row(yb, x0, w).data(),
                       static_cast<size_t>(w) * sizeof(Pixel)) == 0;
  }
  for (int32_t x = x0; x < x0 + w; ++x) {
    if (after.GetPixel(x, ya) != before.GetPixel(x, yb)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Encoder::Encoder(EncoderOptions options) : options_(options) {
  SLIM_CHECK(options_.band_height > 0);
  SLIM_CHECK(options_.chunk_width > 0);
  SLIM_CHECK(options_.max_set_pixels > 0);
  SLIM_CHECK(options_.threads > 0);
  SLIM_CHECK(options_.scroll_max_shift >= 0);
}

std::vector<DisplayCommand> Encoder::EncodeDamage(const Framebuffer& fb,
                                                  const Region& damage) const {
  std::vector<DisplayCommand> out;
  for (const Rect& r : damage.rects()) {
    EncodeRect(fb, r, &out);
  }
  return out;
}

void Encoder::EncodeRect(const Framebuffer& fb, const Rect& rect,
                         std::vector<DisplayCommand>* out) const {
  SLIM_DCHECK(out != nullptr);
  std::vector<Rect> bands;
  AppendBands(fb, rect, &bands);
  for (const Rect& band : bands) {
    EncodeBand(fb, band, out);
  }
}

void Encoder::AppendBands(const Framebuffer& fb, const Rect& rect,
                          std::vector<Rect>* out) const {
  SLIM_DCHECK(out != nullptr);
  const Rect clipped = Intersect(rect, fb.bounds());
  if (clipped.empty()) {
    return;
  }
  for (int32_t y = clipped.y; y < clipped.bottom(); y += options_.band_height) {
    const int32_t bh = std::min(options_.band_height, clipped.bottom() - y);
    out->push_back(Rect{clipped.x, y, clipped.w, bh});
  }
}

void Encoder::EncodeBand(const Framebuffer& fb, const Rect& band,
                         std::vector<DisplayCommand>* out) const {
  // Whole-band fast path: uniform or bicolor bands are common (window background, text).
  const ColorScan whole = ScanColors(fb, band);
  if (whole.distinct <= 1 && options_.enable_fill) {
    out->push_back(FillCommand{band, whole.first});
    return;
  }
  if (whole.distinct == 2 && options_.enable_bitmap) {
    EmitBitmap(fb, band, whole.first, whole.second, out);
    return;
  }

  // Mixed band: classify fixed-width column chunks, then merge adjacent compatible chunks so
  // a long text run still becomes a single BITMAP and a long gradient a single SET.
  enum class Kind { kFill, kBitmap, kSet };
  struct Chunk {
    Kind kind;
    Rect rect;
    Pixel a = 0;  // fill color / bitmap bg
    Pixel b = 0;  // bitmap fg
  };
  std::vector<Chunk> chunks;
  for (int32_t x = band.x; x < band.right(); x += options_.chunk_width) {
    const int32_t cw = std::min(options_.chunk_width, band.right() - x);
    const Rect r{x, band.y, cw, band.h};
    const ColorScan scan = ScanColors(fb, r);
    Chunk chunk{Kind::kSet, r, 0, 0};
    if (scan.distinct <= 1 && options_.enable_fill) {
      chunk = Chunk{Kind::kFill, r, scan.first, 0};
    } else if (scan.distinct == 2 && options_.enable_bitmap) {
      chunk = Chunk{Kind::kBitmap, r, scan.first, scan.second};
    }
    if (!chunks.empty()) {
      Chunk& prev = chunks.back();
      const bool same_fill = prev.kind == Kind::kFill && chunk.kind == Kind::kFill &&
                             prev.a == chunk.a;
      const bool same_set = prev.kind == Kind::kSet && chunk.kind == Kind::kSet;
      // Two bicolor chunks merge when their color sets are compatible.
      const bool same_bitmap =
          prev.kind == Kind::kBitmap && chunk.kind == Kind::kBitmap &&
          ((prev.a == chunk.a && prev.b == chunk.b) || (prev.a == chunk.b && prev.b == chunk.a));
      // A fill chunk extends a bitmap run when its color is one of the run's two colors.
      const bool fill_into_bitmap = prev.kind == Kind::kBitmap && chunk.kind == Kind::kFill &&
                                    (chunk.a == prev.a || chunk.a == prev.b);
      const bool bitmap_after_fill = prev.kind == Kind::kFill && chunk.kind == Kind::kBitmap &&
                                     (prev.a == chunk.a || prev.a == chunk.b);
      if (same_fill || same_set || same_bitmap || fill_into_bitmap) {
        prev.rect.w += chunk.rect.w;
        continue;
      }
      if (bitmap_after_fill) {
        prev.kind = Kind::kBitmap;
        if (prev.a == chunk.b) {
          prev.b = chunk.a;
        } else {
          prev.b = chunk.b;
        }
        prev.rect.w += chunk.rect.w;
        continue;
      }
    }
    chunks.push_back(chunk);
  }
  for (const Chunk& chunk : chunks) {
    switch (chunk.kind) {
      case Kind::kFill:
        out->push_back(FillCommand{chunk.rect, chunk.a});
        break;
      case Kind::kBitmap:
        EmitBitmap(fb, chunk.rect, chunk.a, chunk.b, out);
        break;
      case Kind::kSet:
        EmitSet(fb, chunk.rect, out);
        break;
    }
  }
}

void Encoder::EmitSet(const Framebuffer& fb, const Rect& rect,
                      std::vector<DisplayCommand>* out) const {
  // Split wide and tall SETs so one command never exceeds max_set_pixels. Chunk merging in
  // EncodeBand can hand us a run wider than max_set_pixels, so a row-only split is not
  // enough: a single row of such a run would still bust the cap.
  const int32_t max_cols = static_cast<int32_t>(
      std::min<int64_t>(std::max(rect.w, 1), options_.max_set_pixels));
  for (int32_t x = rect.x; x < rect.right(); x += max_cols) {
    const int32_t w = std::min(max_cols, rect.right() - x);
    const int32_t max_rows =
        std::max<int32_t>(1, static_cast<int32_t>(options_.max_set_pixels / w));
    for (int32_t y = rect.y; y < rect.bottom(); y += max_rows) {
      const int32_t h = std::min(max_rows, rect.bottom() - y);
      const Rect part{x, y, w, h};
      std::vector<Pixel> pixels;
      fb.ReadPixels(part, &pixels);
      out->push_back(SetCommand{part, PackRgb(pixels)});
    }
  }
}

void Encoder::EmitBitmap(const Framebuffer& fb, const Rect& rect, Pixel bg, Pixel fg,
                         std::vector<DisplayCommand>* out) const {
  // The kernel packs MSB-first with the trailing bits of a row's final byte zero,
  // exactly the layout ExpandBitmap expects.
  const KernelOps& kernels = Kernels();
  const size_t stride = (static_cast<size_t>(rect.w) + 7) / 8;
  std::vector<uint8_t> bits(stride * static_cast<size_t>(rect.h), 0);
  for (int32_t y = rect.y; y < rect.bottom(); ++y) {
    const std::span<const Pixel> row = fb.Row(y, rect.x, rect.w);
    kernels.pack_bitmap_row(row.data(), row.size(), fg,
                            &bits[static_cast<size_t>(y - rect.y) * stride]);
  }
  out->push_back(BitmapCommand{rect, fg, bg, std::move(bits)});
}

void Encoder::Accumulate(const std::vector<DisplayCommand>& cmds, EncodeStats stats[6]) {
  for (const DisplayCommand& cmd : cmds) {
    AccumulateOne(TypeOf(cmd), WireSize(cmd), UncompressedBytes(cmd), AffectedPixels(cmd),
                  stats);
  }
}

void Encoder::AccumulateOne(CommandType type, size_t wire_bytes, int64_t uncompressed_bytes,
                            int64_t pixels, EncodeStats stats[6]) {
  const size_t index = static_cast<size_t>(type);
  SLIM_CHECK(index >= 1 && index < 6);
  EncodeStats& slot = stats[index];
  slot.commands += 1;
  slot.wire_bytes += static_cast<int64_t>(wire_bytes);
  slot.uncompressed_bytes += uncompressed_bytes;
  slot.pixels += pixels;
}

int32_t DetectVerticalScroll(const Framebuffer& before, const Framebuffer& after,
                             const Rect& rect, int32_t max_shift,
                             const ScrollHashHints* hints) {
  const Rect r = Intersect(rect, after.bounds());
  // Rects narrower or shorter than 8 pixels carry too few independent rows/columns for a
  // match to mean anything (and a "scroll" of a sliver saves nothing), so both dimensions
  // are guarded, not just the height.
  if (r.empty() || r.h < 8 || r.w < 8 || max_shift <= 0) {
    return 0;
  }

  // Hash every row of the rect once, then index the `before` hashes so each `after` row
  // proposes its plausible shifts in one lookup. A dy is a candidate only when every row
  // of its shifted overlap hash-matches (votes == overlap), which subsumes the old sparse
  // probe grid: any dy the probe pass would have accepted hash-matches too.
  //
  // Hints replace both hashing passes when the rect spans full rows of both frames (then
  // a full-row hash IS the rect-restricted hash). Both sides must come from the same
  // source — mixing hinted and computed hashes would break hash-to-hash comparability.
  const bool use_hints =
      hints != nullptr && r.x == 0 && r.w == after.width() && r.w == before.width() &&
      r.bottom() <= before.height() &&
      hints->after_rows.size() >= static_cast<size_t>(r.bottom()) &&
      hints->before_rows.size() >= static_cast<size_t>(r.bottom());
  std::vector<uint64_t> after_hash(static_cast<size_t>(r.h));
  std::vector<uint64_t> before_hash(static_cast<size_t>(r.h));
  std::vector<Pixel> scratch;  // shared pad buffer for rows hanging off the frame edge
  for (int32_t i = 0; i < r.h; ++i) {
    const size_t yi = static_cast<size_t>(r.y + i);
    after_hash[static_cast<size_t>(i)] =
        use_hints ? hints->after_rows[yi] : HashRowSpan(after, r.y + i, r.x, r.w, &scratch);
    before_hash[static_cast<size_t>(i)] =
        use_hints ? hints->before_rows[yi]
                  : HashRowSpan(before, r.y + i, r.x, r.w, &scratch);
  }
  std::unordered_map<uint64_t, std::vector<int32_t>> index;
  index.reserve(static_cast<size_t>(r.h));
  for (int32_t i = 0; i < r.h; ++i) {
    index[before_hash[static_cast<size_t>(i)]].push_back(i);  // ascending by construction
  }
  // votes[dy + max_shift] = number of after-rows i whose hash matches before-row i - dy.
  // Each (i, dy) pair is counted at most once (the source row is determined by i and dy),
  // so votes[dy] == overlap(dy) iff every overlapping row hash-matches under that shift.
  std::vector<int32_t> votes(static_cast<size_t>(2 * max_shift + 1), 0);
  for (int32_t i = 0; i < r.h; ++i) {
    const auto it = index.find(after_hash[static_cast<size_t>(i)]);
    if (it == index.end()) {
      continue;
    }
    const std::vector<int32_t>& rows = it->second;
    // Only source rows within max_shift of i matter; duplicate-row content (menus, blank
    // lines) would otherwise make this pass quadratic in the rect height.
    for (auto p = std::lower_bound(rows.begin(), rows.end(), i - max_shift);
         p != rows.end() && *p <= i + max_shift; ++p) {
      if (*p != i) {
        votes[static_cast<size_t>(i - *p + max_shift)] += 1;
      }
    }
  }

  // Same preference order as the probe detector (smallest magnitude first, negative before
  // positive), and the same exhaustive confirmation — now a memcmp per overlap row — so the
  // two detectors return identical results on every input. The probe grid's reach is also
  // preserved: a downward shift past the last grid row left the probe pass with zero
  // evidence, so the old detector never proposed it and this one must not either.
  const int32_t probes_y = std::min<int32_t>(16, r.h);
  const int32_t last_grid_row =
      static_cast<int32_t>(static_cast<int64_t>(probes_y - 1) * r.h / probes_y);
  for (int32_t magnitude = 1; magnitude <= max_shift; ++magnitude) {
    for (const int32_t dy : {-magnitude, magnitude}) {
      const int32_t overlap = r.h - magnitude;
      if (overlap <= 0 || votes[static_cast<size_t>(dy + max_shift)] != overlap ||
          (dy > 0 && dy > last_grid_row)) {
        continue;
      }
      const int32_t y0 = std::max(r.y, r.y + dy);
      const int32_t y1 = std::min(r.bottom(), r.bottom() + dy);
      bool confirmed = true;
      for (int32_t y = y0; y < y1 && confirmed; ++y) {
        confirmed = RowSpansEqual(after, y, before, y - dy, r.x, r.w);
      }
      if (confirmed) {
        return dy;
      }
    }
  }
  return 0;
}

int32_t DetectVerticalScrollProbe(const Framebuffer& before, const Framebuffer& after,
                                  const Rect& rect, int32_t max_shift) {
  const Rect r = Intersect(rect, after.bounds());
  if (r.empty() || r.h < 8 || r.w < 8) {
    return 0;
  }
  // Sample a sparse grid of probe points; a shift must explain nearly all of them. The
  // probe count is clamped to the rect so integer-division positions never collapse onto
  // duplicate columns/rows: with probes <= extent the stride is at least one pixel, and a
  // duplicated probe would count the same pixel twice, inflating the grid's confidence.
  constexpr int32_t kProbesX = 16;
  constexpr int32_t kProbesY = 16;
  const int32_t probes_x = std::min(kProbesX, r.w);
  const int32_t probes_y = std::min(kProbesY, r.h);
  for (int32_t magnitude = 1; magnitude <= max_shift; ++magnitude) {
    for (const int32_t dy : {-magnitude, magnitude}) {
      int matches = 0;
      int probes = 0;
      for (int32_t py = 0; py < probes_y; ++py) {
        const int32_t y = r.y + static_cast<int64_t>(py) * r.h / probes_y;
        const int32_t sy = y - dy;
        if (sy < r.y || sy >= r.bottom()) {
          continue;
        }
        for (int32_t px = 0; px < probes_x; ++px) {
          const int32_t x = r.x + static_cast<int64_t>(px) * r.w / probes_x;
          ++probes;
          if (after.GetPixel(x, y) == before.GetPixel(x, sy)) {
            ++matches;
          }
        }
      }
      if (probes > 0 && matches == probes) {
        // Confirm exhaustively on the shifted interior before trusting the sparse probe.
        const int32_t y0 = std::max(r.y, r.y + dy);
        const int32_t y1 = std::min(r.bottom(), r.bottom() + dy);
        bool confirmed = true;
        for (int32_t y = y0; y < y1 && confirmed; ++y) {
          confirmed = RowSpansEqual(after, y, before, y - dy, r.x, r.w);
        }
        if (confirmed) {
          return dy;
        }
      }
    }
  }
  return 0;
}

}  // namespace slim
