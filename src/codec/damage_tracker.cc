#include "src/codec/damage_tracker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/codec/encoder.h"
#include "src/codec/kernels/kernels.h"
#include "src/codec/row_hash.h"
#include "src/util/check.h"

namespace slim {
namespace {

// A run of consecutive dirty rows and the union of their changed column extents.
struct DirtyRun {
  int32_t y0 = 0;
  int32_t y1 = 0;  // exclusive
  int32_t x_lo = 0;
  int32_t x_hi = 0;  // exclusive
};

// Bounding encoder work per damage rect: beyond this many dirty runs the refinement is
// fragmentation, not savings, and one rect covering the dirty rows encodes faster than
// dozens of slivers (the encoder's own band/chunk analysis re-finds the structure).
constexpr size_t kMaxRunsPerRect = 48;

// Scroll salvage is only worth the detector pass on damage that plausibly IS a scroll:
// a block at least this tall/wide with at least this many rows actually changed.
constexpr int32_t kScrollMinWidth = 8;
constexpr int32_t kScrollMinHeight = 16;
constexpr int32_t kScrollMinDirtyRows = 8;

}  // namespace

bool DamageTrackerFromEnv(bool fallback) {
  const char* value = std::getenv("SLIM_DAMAGE_TRACKER");
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "slim: ignoring SLIM_DAMAGE_TRACKER='%s' (want an integer)\n",
                 value);
    return fallback;
  }
  return parsed != 0;
}

DamageTracker::DamageTracker(int32_t width, int32_t height)
    : shadow_(width, height), row_hashes_(static_cast<size_t>(height)) {
  for (int32_t y = 0; y < height; ++y) {
    RehashRow(y);
  }
}

void DamageTracker::RehashRow(int32_t y) {
  row_hashes_[static_cast<size_t>(y)] = RowHash64(shadow_.Row(y));
}

void DamageTracker::CopySpans(const Framebuffer& fb, int32_t y0, int32_t y1, int32_t x0,
                              int32_t w) {
  for (int32_t y = y0; y < y1; ++y) {
    std::memcpy(shadow_.MutableRow(y, x0, w).data(), fb.Row(y, x0, w).data(),
                static_cast<size_t>(w) * sizeof(Pixel));
    RehashRow(y);
  }
}

void DamageTracker::RestoreShadow(std::span<const Pixel> pixels,
                                  std::span<const uint64_t> hashes, bool valid) {
  SLIM_CHECK(pixels.size() == shadow_.data().size());
  SLIM_CHECK(hashes.size() == row_hashes_.size());
  const int32_t width = shadow_.width();
  for (int32_t y = 0; y < shadow_.height(); ++y) {
    std::memcpy(shadow_.MutableRow(y, 0, width).data(),
                pixels.data() + static_cast<size_t>(y) * width,
                static_cast<size_t>(width) * sizeof(Pixel));
  }
  std::copy(hashes.begin(), hashes.end(), row_hashes_.begin());
  valid_ = valid;
}

void DamageTracker::SyncRect(const Framebuffer& fb, const Rect& rect) {
  SLIM_DCHECK(fb.width() == shadow_.width() && fb.height() == shadow_.height());
  const Rect r = Intersect(rect, shadow_.bounds());
  if (r.empty()) {
    return;
  }
  CopySpans(fb, r.y, r.bottom(), r.x, r.w);
}

Region DamageTracker::Refine(const Framebuffer& fb, const Region& damage,
                             int32_t scroll_max_shift,
                             std::vector<DisplayCommand>* scroll_out) {
  SLIM_DCHECK(fb.width() == shadow_.width() && fb.height() == shadow_.height());
  if (damage.empty()) {
    return Region{};
  }

  if (!valid_) {
    // The shadow can't be trusted (fresh console, loss-recovery resync): pass the damage
    // through unrefined while absorbing it, and revalidate once a full-frame flush has
    // passed. Disjoint damage rects covering the full area cover every pixel.
    for (const Rect& r : damage.rects()) {
      SLIM_DCHECK(shadow_.bounds().ContainsRect(r));
      SyncRect(fb, r);
    }
    if (damage.area() == shadow_.bounds().area()) {
      valid_ = true;
    }
    return damage;
  }

  // Lazily computed full-row hashes of fb. fb is const for the whole call, so these stay
  // valid even as shadow rows are re-synced (the stored shadow hashes do change).
  const size_t rows = static_cast<size_t>(shadow_.height());
  if (fb_row_hashes_.size() != rows) {
    fb_row_hashes_.assign(rows, 0);
    fb_row_hashed_.assign(rows, 0);
  } else {
    std::fill(fb_row_hashed_.begin(), fb_row_hashed_.end(), uint8_t{0});
  }
  auto fb_hash = [&](int32_t y) {
    const size_t i = static_cast<size_t>(y);
    if (!fb_row_hashed_[i]) {
      fb_row_hashes_[i] = RowHash64(fb.Row(y));
      fb_row_hashed_[i] = 1;
    }
    return fb_row_hashes_[i];
  };
  // Syncs the shadow's row y to fb over columns [x0, x0+w) and refreshes the stored row
  // hash — for free from the fb-hash cache when the synced row now equals fb's full row.
  const auto sync_row = [&](int32_t y, int32_t x0, int32_t w, bool row_now_matches_fb) {
    std::memcpy(shadow_.MutableRow(y, x0, w).data(), fb.Row(y, x0, w).data(),
                static_cast<size_t>(w) * sizeof(Pixel));
    row_hashes_[static_cast<size_t>(y)] =
        row_now_matches_fb ? fb_hash(y) : RowHash64(shadow_.Row(y));
  };

  // Scroll salvage: when the damage block looks like the shadow shifted vertically
  // (hint-less scrolls arrive as "the whole window changed"), ship the shift as one COPY
  // and let refinement handle only the residual. Correctness never depends on the
  // detector: whatever still differs after the copy is caught below.
  if (scroll_out != nullptr && scroll_max_shift > 0) {
    const Rect b = damage.bounds();
    if (b.w >= kScrollMinWidth && b.h >= kScrollMinHeight) {
      int32_t dirty_rows = 0;
      for (int32_t y = b.y; y < b.bottom(); ++y) {
        dirty_rows += fb_hash(y) != row_hashes_[static_cast<size_t>(y)] ? 1 : 0;
      }
      if (dirty_rows >= kScrollMinDirtyRows) {
        // The detector reuses the hashes both sides already have: stored shadow row
        // hashes as `before`, the gate's cached fb row hashes as `after` (the gate loop
        // above filled the cache for every row the full-width detector can touch).
        const ScrollHashHints hints{row_hashes_, fb_row_hashes_};
        const int32_t dy = DetectVerticalScroll(shadow_, fb, b, scroll_max_shift, &hints);
        if (dy != 0) {
          const int32_t y0 = std::max(b.y, b.y + dy);
          const int32_t y1 = std::min(b.bottom(), b.bottom() + dy);
          scroll_out->push_back(CopyCommand{b.x, y0 - dy, Rect{b.x, y0, b.w, y1 - y0}});
          // The console will apply the COPY to its framebuffer, which matches the shadow;
          // mirror it so refinement diffs against the post-copy display state. The
          // detector confirmed fb == shifted shadow over the overlap's rect columns, so
          // copying fb's rows IS applying the COPY — and spares rereading the shadow.
          const bool full_rows = b.x == 0 && b.w == shadow_.width();
          for (int32_t y = y0; y < y1; ++y) {
            sync_row(y, b.x, b.w, full_rows);
          }
        }
      }
    }
  }

  const KernelOps& kernels = Kernels();
  Region refined;
  for (const Rect& r : damage.rects()) {
    SLIM_DCHECK(shadow_.bounds().ContainsRect(r));
    std::vector<DirtyRun> runs;
    bool collapsed = false;
    for (int32_t y = r.y; y < r.bottom(); ++y) {
      // Cheap filter first: a full fb row hashing to the shadow's stored hash is
      // unchanged everywhere, so in particular over this rect's columns.
      if (fb_hash(y) == row_hashes_[static_cast<size_t>(y)]) {
        continue;
      }
      const std::span<const Pixel> cur = fb.Row(y, r.x, r.w);
      const std::span<const Pixel> old = shadow_.Row(y, r.x, r.w);
      // Tight changed extent — first and last differing pixel in the rect's columns —
      // in one kernel pass instead of a memcmp plus two scalar scans.
      int32_t lo = 0;
      int32_t hi = r.w;  // exclusive
      if (!kernels.row_diff_span(cur.data(), old.data(), cur.size(), &lo, &hi)) {
        continue;  // the change is on this row but outside this rect
      }
      // Bring the shadow up to date for this row before moving on; fb hashes are cached,
      // so later rects sharing the row still compare correctly. A full-width rect leaves
      // the whole shadow row equal to fb's, so its hash comes from the cache.
      sync_row(y, r.x + lo, hi - lo, r.x == 0 && r.w == shadow_.width());

      if (!runs.empty() && runs.back().y1 == y) {
        DirtyRun& run = runs.back();
        run.y1 = y + 1;
        run.x_lo = std::min(run.x_lo, r.x + lo);
        run.x_hi = std::max(run.x_hi, r.x + hi);
      } else if (!collapsed && runs.size() >= kMaxRunsPerRect) {
        collapsed = true;
        runs.push_back(DirtyRun{y, y + 1, r.x + lo, r.x + hi});
      } else if (collapsed) {
        DirtyRun& run = runs.back();
        run.y1 = y + 1;
        run.x_lo = std::min(run.x_lo, r.x + lo);
        run.x_hi = std::max(run.x_hi, r.x + hi);
      } else {
        runs.push_back(DirtyRun{y, y + 1, r.x + lo, r.x + hi});
      }
    }
    if (collapsed) {
      // Too fragmented to be worth rect-per-run: merge everything dirty in this rect into
      // one bounding rect (still inside r, still disjoint from other rects' output).
      DirtyRun all = runs.front();
      for (const DirtyRun& run : runs) {
        all.y0 = std::min(all.y0, run.y0);
        all.y1 = std::max(all.y1, run.y1);
        all.x_lo = std::min(all.x_lo, run.x_lo);
        all.x_hi = std::max(all.x_hi, run.x_hi);
      }
      runs.assign(1, all);
    }
    for (const DirtyRun& run : runs) {
      refined.AddDisjoint(Rect{run.x_lo, run.y0, run.x_hi - run.x_lo, run.y1 - run.y0});
    }
  }
  return refined;
}

}  // namespace slim
