// Server-side SLIM encoder: turns framebuffer damage into display commands.
//
// This is the piece the paper implements inside the X-server's virtual device driver
// (Section 2.2): it inspects the rendered pixels and exploits their redundancy —
// solid regions become FILL, bicolor (text) regions become BITMAP, everything else is sent
// literally with SET. COPY is driven by API-level hints (scrolls / window moves arrive as
// explicit copies from the display server, exactly as X's CopyArea reaches the driver), with
// an optional pixel-search fallback for vertical scrolls.

#ifndef SRC_CODEC_ENCODER_H_
#define SRC_CODEC_ENCODER_H_

#include <vector>

#include "src/fb/framebuffer.h"
#include "src/fb/geometry.h"
#include "src/protocol/commands.h"

namespace slim {

struct EncoderOptions {
  // Heuristic toggles; each is an ablation point (DESIGN.md Section 5).
  bool enable_fill = true;
  bool enable_bitmap = true;

  // Rows analyzed at a time. Smaller bands find more structure but add per-command overhead.
  int32_t band_height = 32;

  // Column chunk width when a band is not uniform/bicolor as a whole.
  int32_t chunk_width = 64;

  // Maximum pixels in one SET command; larger regions are split so that commands stay below
  // the transport's reassembly limits and the console can interleave other flows.
  int64_t max_set_pixels = 128 * 1024;

  // Worker threads for damage encoding. 1 = serial (encode on the calling thread, no pool);
  // >1 enables EncoderPool (src/codec/parallel.h), which splits damage into bands and
  // encodes them concurrently with bit-identical output for every thread count.
  int threads = 1;

  // Shadow-frame damage refinement (src/codec/damage_tracker.h): the session keeps a copy
  // of the last-transmitted frame plus per-row hashes and trims draw-op damage to the
  // pixels that actually changed before encoding, so over-broad damage (RepaintAll,
  // full-window PutImage of mostly-unchanged content) costs what it is worth. Disable for
  // ablation with SLIM_DAMAGE_TRACKER=0 (env override applied in SlimServer).
  bool damage_tracker = true;

  // Maximum |dy| the damage tracker's scroll salvage searches when a large damage block
  // might be the shadow frame shifted vertically (hint-less scrolls arriving as full
  // repaints). 0 disables salvage. Only meaningful when damage_tracker is on.
  int32_t scroll_max_shift = 64;
};

// Statistics the encoder keeps per command type; the Figure 4 harness reads these.
struct EncodeStats {
  int64_t commands = 0;
  int64_t wire_bytes = 0;          // bytes on the wire, headers included
  int64_t uncompressed_bytes = 0;  // 3 bytes per affected pixel
  int64_t pixels = 0;

  bool operator==(const EncodeStats&) const = default;
};

class Encoder {
 public:
  explicit Encoder(EncoderOptions options = {});

  const EncoderOptions& options() const { return options_; }

  // Encodes the current contents of fb over `damage` into commands. Applying the returned
  // commands to any framebuffer that matches fb outside the damage region makes it equal to
  // fb inside the damage region (the round-trip property tested in codec_test).
  std::vector<DisplayCommand> EncodeDamage(const Framebuffer& fb, const Region& damage) const;

  // Encodes a single rectangle (clipped to fb bounds).
  void EncodeRect(const Framebuffer& fb, const Rect& rect,
                  std::vector<DisplayCommand>* out) const;

  // Appends the band decomposition EncodeRect analyzes for `rect` (clipped to fb bounds) to
  // out. This is the unit of work the parallel path distributes: encoding the bands of a
  // damage region in order with EncodeBand produces exactly EncodeDamage's command stream,
  // because bands are analyzed independently (no cross-band encoder state).
  void AppendBands(const Framebuffer& fb, const Rect& rect, std::vector<Rect>* out) const;

  // Encodes one band (as produced by AppendBands). Thread-safe: only reads options_ and fb.
  void EncodeBand(const Framebuffer& fb, const Rect& band,
                  std::vector<DisplayCommand>* out) const;

  // Accumulates per-type stats for a command list into a 6-slot array indexed by
  // CommandType (slot 0 unused).
  static void Accumulate(const std::vector<DisplayCommand>& cmds,
                         EncodeStats stats[6]);

  // One row of Accumulate: range-checked slot update shared by the serial and parallel
  // accumulation paths. Aborts on a command type outside the wire enum — a malformed type
  // (e.g. decoded from a corrupted stream) must not index out of bounds.
  static void AccumulateOne(CommandType type, size_t wire_bytes, int64_t uncompressed_bytes,
                            int64_t pixels, EncodeStats stats[6]);

 private:
  void EmitSet(const Framebuffer& fb, const Rect& rect, std::vector<DisplayCommand>* out) const;
  void EmitBitmap(const Framebuffer& fb, const Rect& rect, Pixel bg, Pixel fg,
                  std::vector<DisplayCommand>* out) const;

  EncoderOptions options_;
};

// Optional precomputed row hashes for DetectVerticalScroll: RowHash64 (src/codec/row_hash.h)
// of each FULL row of the respective framebuffer, indexed by absolute y. The damage
// tracker maintains exactly these for its shadow (before) and computes them for the
// current frame (after) anyway, so passing them saves the detector both hashing passes.
// Only consulted when `rect` spans the full width of both frames — a full-row hash equals
// the rect-restricted hash only then — and when both spans cover the rect's rows.
struct ScrollHashHints {
  std::span<const uint64_t> before_rows;
  std::span<const uint64_t> after_rows;
};

// Searches for a vertical scroll between `before` and `after` restricted to `rect`: a dy in
// [-max_shift, max_shift] such that after(x, y) == before(x, y - dy) over the whole shifted
// overlap. Returns 0 when none is found, and always 0 for rects narrower or shorter than
// 8 pixels — too small to distinguish a scroll from coincidence.
//
// One O(rows) pass hashes each row of the rect (skipped entirely when `hints` apply) and
// looks `after` row hashes up in an index of `before` row hashes to vote for candidate
// shifts; candidates whose votes cover the entire overlap are then confirmed by row memcmp
// in the same smallest-|dy|-first, negative-before-positive preference order the
// probe-based detector used, so the two agree on every input (property-tested in
// tests/damage_tracker_test.cc). Cost no longer scales with max_shift: the per-magnitude
// pixel probing is gone.
int32_t DetectVerticalScroll(const Framebuffer& before, const Framebuffer& after,
                             const Rect& rect, int32_t max_shift,
                             const ScrollHashHints* hints = nullptr);

// The original probe-grid detector: tries every magnitude in [1, max_shift], sampling a
// sparse 16x16 probe grid before confirming exhaustively. Kept as the reference
// implementation the hash-indexed detector is property-tested against (and benchmarked
// against in bench_damage_pipeline); not used on the serving path.
int32_t DetectVerticalScrollProbe(const Framebuffer& before, const Framebuffer& after,
                                  const Rect& rect, int32_t max_shift);

}  // namespace slim

#endif  // SRC_CODEC_ENCODER_H_
