// Server-side SLIM encoder: turns framebuffer damage into display commands.
//
// This is the piece the paper implements inside the X-server's virtual device driver
// (Section 2.2): it inspects the rendered pixels and exploits their redundancy —
// solid regions become FILL, bicolor (text) regions become BITMAP, everything else is sent
// literally with SET. COPY is driven by API-level hints (scrolls / window moves arrive as
// explicit copies from the display server, exactly as X's CopyArea reaches the driver), with
// an optional pixel-search fallback for vertical scrolls.

#ifndef SRC_CODEC_ENCODER_H_
#define SRC_CODEC_ENCODER_H_

#include <vector>

#include "src/fb/framebuffer.h"
#include "src/fb/geometry.h"
#include "src/protocol/commands.h"

namespace slim {

struct EncoderOptions {
  // Heuristic toggles; each is an ablation point (DESIGN.md Section 5).
  bool enable_fill = true;
  bool enable_bitmap = true;

  // Rows analyzed at a time. Smaller bands find more structure but add per-command overhead.
  int32_t band_height = 32;

  // Column chunk width when a band is not uniform/bicolor as a whole.
  int32_t chunk_width = 64;

  // Maximum pixels in one SET command; larger regions are split so that commands stay below
  // the transport's reassembly limits and the console can interleave other flows.
  int64_t max_set_pixels = 128 * 1024;

  // Worker threads for damage encoding. 1 = serial (encode on the calling thread, no pool);
  // >1 enables EncoderPool (src/codec/parallel.h), which splits damage into bands and
  // encodes them concurrently with bit-identical output for every thread count.
  int threads = 1;
};

// Statistics the encoder keeps per command type; the Figure 4 harness reads these.
struct EncodeStats {
  int64_t commands = 0;
  int64_t wire_bytes = 0;          // bytes on the wire, headers included
  int64_t uncompressed_bytes = 0;  // 3 bytes per affected pixel
  int64_t pixels = 0;

  bool operator==(const EncodeStats&) const = default;
};

class Encoder {
 public:
  explicit Encoder(EncoderOptions options = {});

  const EncoderOptions& options() const { return options_; }

  // Encodes the current contents of fb over `damage` into commands. Applying the returned
  // commands to any framebuffer that matches fb outside the damage region makes it equal to
  // fb inside the damage region (the round-trip property tested in codec_test).
  std::vector<DisplayCommand> EncodeDamage(const Framebuffer& fb, const Region& damage) const;

  // Encodes a single rectangle (clipped to fb bounds).
  void EncodeRect(const Framebuffer& fb, const Rect& rect,
                  std::vector<DisplayCommand>* out) const;

  // Appends the band decomposition EncodeRect analyzes for `rect` (clipped to fb bounds) to
  // out. This is the unit of work the parallel path distributes: encoding the bands of a
  // damage region in order with EncodeBand produces exactly EncodeDamage's command stream,
  // because bands are analyzed independently (no cross-band encoder state).
  void AppendBands(const Framebuffer& fb, const Rect& rect, std::vector<Rect>* out) const;

  // Encodes one band (as produced by AppendBands). Thread-safe: only reads options_ and fb.
  void EncodeBand(const Framebuffer& fb, const Rect& band,
                  std::vector<DisplayCommand>* out) const;

  // Accumulates per-type stats for a command list into a 6-slot array indexed by
  // CommandType (slot 0 unused).
  static void Accumulate(const std::vector<DisplayCommand>& cmds,
                         EncodeStats stats[6]);

  // One row of Accumulate: range-checked slot update shared by the serial and parallel
  // accumulation paths. Aborts on a command type outside the wire enum — a malformed type
  // (e.g. decoded from a corrupted stream) must not index out of bounds.
  static void AccumulateOne(CommandType type, size_t wire_bytes, int64_t uncompressed_bytes,
                            int64_t pixels, EncodeStats stats[6]);

 private:
  void EmitSet(const Framebuffer& fb, const Rect& rect, std::vector<DisplayCommand>* out) const;
  void EmitBitmap(const Framebuffer& fb, const Rect& rect, Pixel bg, Pixel fg,
                  std::vector<DisplayCommand>* out) const;

  EncoderOptions options_;
};

// Searches for a vertical scroll between `before` and `after` restricted to `rect`: a dy in
// [-max_shift, max_shift] such that after(x, y) == before(x, y - dy) for most of the rect.
// Returns 0 when none is found, and always 0 for rects narrower or shorter than 8 pixels —
// too small for the sparse probe grid to distinguish a scroll from coincidence.
int32_t DetectVerticalScroll(const Framebuffer& before, const Framebuffer& after,
                             const Rect& rect, int32_t max_shift);

}  // namespace slim

#endif  // SRC_CODEC_ENCODER_H_
