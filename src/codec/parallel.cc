#include "src/codec/parallel.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/util/check.h"

namespace slim {

int EncodeThreadsFromEnv(int fallback) {
  const char* value = std::getenv("SLIM_ENCODE_THREADS");
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1 || parsed > 1024) {
    std::fprintf(stderr,
                 "[env] SLIM_ENCODE_THREADS='%s' is not a thread count in [1, 1024]; "
                 "using default %d\n",
                 value, fallback);
    return fallback;
  }
  return static_cast<int>(parsed);
}

void MergeEncodeStats(const EncodeStats from[6], EncodeStats into[6]) {
  for (int t = 0; t < 6; ++t) {
    into[t].commands += from[t].commands;
    into[t].wire_bytes += from[t].wire_bytes;
    into[t].uncompressed_bytes += from[t].uncompressed_bytes;
    into[t].pixels += from[t].pixels;
  }
}

EncoderPool::EncoderPool(EncoderOptions options)
    : encoder_(options), threads_(std::max(1, options.threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

EncoderPool::~EncoderPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void EncoderPool::RunShard(const Framebuffer& fb, const std::vector<Rect>& bands,
                           std::vector<std::vector<DisplayCommand>>* slots,
                           EncodeStats local[6]) {
  while (true) {
    const size_t i = next_band_.fetch_add(1, std::memory_order_relaxed);
    if (i >= bands.size()) {
      return;
    }
    std::vector<DisplayCommand>& slot = (*slots)[i];
    encoder_.EncodeBand(fb, bands[i], &slot);
    Encoder::Accumulate(slot, local);
  }
}

void EncoderPool::WorkerLoop() {
  uint64_t seen = 0;
  while (true) {
    const Framebuffer* fb = nullptr;
    const std::vector<Rect>* bands = nullptr;
    std::vector<std::vector<DisplayCommand>>* slots = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
      fb = job_fb_;
      bands = job_bands_;
      slots = job_slots_;
    }
    EncodeStats local[6] = {};
    RunShard(*fb, *bands, slots, local);
    {
      std::lock_guard<std::mutex> lock(mu_);
      MergeEncodeStats(local, job_stats_);
      ++checked_in_;
    }
    done_cv_.notify_one();
  }
}

std::vector<DisplayCommand> EncoderPool::EncodeDamage(const Framebuffer& fb,
                                                      const Region& damage,
                                                      EncodeStats merged[6]) {
  std::vector<Rect> bands;
  for (const Rect& r : damage.rects()) {
    encoder_.AppendBands(fb, r, &bands);
  }

  std::vector<DisplayCommand> out;
  if (workers_.empty() || bands.size() <= 1) {
    // Serial path: the calling thread is the only worker, so encode in band order directly.
    for (const Rect& band : bands) {
      encoder_.EncodeBand(fb, band, &out);
    }
    if (merged != nullptr) {
      Encoder::Accumulate(out, merged);
    }
    return out;
  }

  std::vector<std::vector<DisplayCommand>> slots(bands.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fb_ = &fb;
    job_bands_ = &bands;
    job_slots_ = &slots;
    next_band_.store(0, std::memory_order_relaxed);
    checked_in_ = 0;
    std::fill(job_stats_, job_stats_ + 6, EncodeStats{});
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller works the queue too, then waits for every worker to check in. Waiting for
  // all workers (not just for the queue to drain) guarantees no worker still reads the
  // stack-owned job state when this frame returns.
  EncodeStats local[6] = {};
  RunShard(fb, bands, &slots, local);
  {
    std::unique_lock<std::mutex> lock(mu_);
    MergeEncodeStats(local, job_stats_);
    done_cv_.wait(lock, [&] { return checked_in_ == workers_.size(); });
    if (merged != nullptr) {
      MergeEncodeStats(job_stats_, merged);
    }
  }

  size_t total = 0;
  for (const std::vector<DisplayCommand>& slot : slots) {
    total += slot.size();
  }
  out.reserve(total);
  for (std::vector<DisplayCommand>& slot : slots) {
    for (DisplayCommand& cmd : slot) {
      out.push_back(std::move(cmd));
    }
  }
  return out;
}

}  // namespace slim
