#include "src/codec/decoder.h"

#include "src/color/yuv.h"

namespace slim {

bool ValidateCommand(const DisplayCommand& cmd) {
  return std::visit(
      [](const auto& c) -> bool {
        using T = std::decay_t<decltype(c)>;
        if (c.dst.empty() || c.dst.w < 0 || c.dst.h < 0) {
          return false;
        }
        if constexpr (std::is_same_v<T, SetCommand>) {
          return c.rgb.size() == static_cast<size_t>(c.dst.area()) * 3;
        } else if constexpr (std::is_same_v<T, BitmapCommand>) {
          const size_t stride = (static_cast<size_t>(c.dst.w) + 7) / 8;
          return c.bits.size() == stride * static_cast<size_t>(c.dst.h);
        } else if constexpr (std::is_same_v<T, FillCommand>) {
          return true;
        } else if constexpr (std::is_same_v<T, CopyCommand>) {
          return true;
        } else {
          if (c.src_w <= 0 || c.src_h <= 0) {
            return false;
          }
          // Bilinear scaling only enlarges (the console has no decimation hardware).
          if (c.src_w > c.dst.w || c.src_h > c.dst.h) {
            return false;
          }
          return c.payload.size() == CscsPayloadBytes(c.src_w, c.src_h, c.depth);
        }
      },
      cmd);
}

bool ApplyCommand(const DisplayCommand& cmd, Framebuffer* fb) {
  if (fb == nullptr || !ValidateCommand(cmd)) {
    return false;
  }
  if (const auto* copy = std::get_if<CopyCommand>(&cmd)) {
    // ValidateCommand is framebuffer-agnostic, so the source rect can only be checked here:
    // a corrupted or malicious COPY must not read outside the framebuffer (the real
    // hardware's blitter would happily scoop up whatever memory sits past the edge).
    const Rect src{copy->src_x, copy->src_y, copy->dst.w, copy->dst.h};
    if (!fb->bounds().ContainsRect(src)) {
      return false;
    }
  }
  std::visit(
      [fb](const auto& c) {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, SetCommand>) {
          fb->SetPixels(c.dst, UnpackRgb(c.rgb));
        } else if constexpr (std::is_same_v<T, BitmapCommand>) {
          fb->ExpandBitmap(c.dst, c.bits, c.fg, c.bg);
        } else if constexpr (std::is_same_v<T, FillCommand>) {
          fb->Fill(c.dst, c.color);
        } else if constexpr (std::is_same_v<T, CopyCommand>) {
          fb->CopyRect(c.src_x, c.src_y, c.dst);
        } else {
          const YuvImage image = UnpackCscsPayload(c.payload, c.src_w, c.src_h, c.depth);
          fb->SetPixels(c.dst, YuvToRgbScaled(image, c.dst.w, c.dst.h));
        }
      },
      cmd);
  return true;
}

}  // namespace slim
