// Band-parallel damage encoding.
//
// The paper's SMP scaling results (Section 6.2, Figure 10) rely on the server spending its
// cycles where they parallelize; in this reproduction the real hot path is
// Encoder::EncodeDamage, which analyzes every damaged pixel. EncoderPool makes that path
// scale with cores: damage is split into the same per-band work items the serial encoder
// analyzes (Encoder::AppendBands), bands are encoded concurrently by a persistent worker
// pool, and the per-band command lists are concatenated in band order.
//
// Determinism contract: for any thread count, EncodeDamage returns a command stream
// byte-identical to Encoder::EncodeDamage, and the merged EncodeStats equal the serial
// accumulation. This holds because bands are analyzed independently in the serial encoder
// too (no cross-band state), the band list is built identically, and merge order is band
// order — scheduling affects only who encodes a band, never what it produces or where it
// lands. The equivalence is property-tested in tests/parallel_codec_test.cc.
//
// Threading contract: workers touch only their own scratch EncodeStats and their claimed
// band slots; merged stats are written on the calling thread after all workers check in.
// Callers that expose stats cells to MetricRegistry therefore keep the registry's
// "owning-thread writes only" rule (src/obs/metrics.h). A pool runs one EncodeDamage at a
// time (it is not reentrant); each ServerSession owns its own pool.

#ifndef SRC_CODEC_PARALLEL_H_
#define SRC_CODEC_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/codec/encoder.h"

namespace slim {

// Resolves the encode thread count: SLIM_ENCODE_THREADS when set to a valid positive
// integer (warning on stderr for garbage), otherwise `fallback`. Silent when unset, so the
// common no-override path does not spam benchmark output.
int EncodeThreadsFromEnv(int fallback);

// Adds `from` into `into` field by field (the join-time merge of worker-local scratch).
void MergeEncodeStats(const EncodeStats from[6], EncodeStats into[6]);

class EncoderPool {
 public:
  // Spawns options.threads - 1 persistent workers; the calling thread is the remaining
  // worker, so threads == 1 degenerates to the serial encoder with no synchronization.
  explicit EncoderPool(EncoderOptions options);
  ~EncoderPool();
  EncoderPool(const EncoderPool&) = delete;
  EncoderPool& operator=(const EncoderPool&) = delete;

  int threads() const { return threads_; }
  const Encoder& encoder() const { return encoder_; }

  // Encodes damage bit-identically to encoder().EncodeDamage(fb, damage). When `merged` is
  // non-null, the per-command-type stats of the returned commands are accumulated into it
  // (equal to Encoder::Accumulate over the result) — workers accumulate into worker-local
  // scratch and the sum lands in `merged` on the calling thread.
  std::vector<DisplayCommand> EncodeDamage(const Framebuffer& fb, const Region& damage,
                                           EncodeStats merged[6] = nullptr);

 private:
  void WorkerLoop();
  // Claims band indices until the queue drains; returns after encoding its share into the
  // per-band slots and accumulating into `local`.
  void RunShard(const Framebuffer& fb, const std::vector<Rect>& bands,
                std::vector<std::vector<DisplayCommand>>* slots, EncodeStats local[6]);

  const Encoder encoder_;
  const int threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a new generation
  std::condition_variable done_cv_;  // the caller waits here for worker check-ins
  bool stop_ = false;
  uint64_t generation_ = 0;  // bumped per EncodeDamage; guarded by mu_

  // Job state for the active generation. Written by the caller under mu_ before the
  // generation bump; workers copy the pointers under mu_ when they wake. The caller does
  // not return until every worker has checked in, so the pointees outlive all readers.
  const Framebuffer* job_fb_ = nullptr;
  const std::vector<Rect>* job_bands_ = nullptr;
  std::vector<std::vector<DisplayCommand>>* job_slots_ = nullptr;
  std::atomic<size_t> next_band_{0};
  size_t checked_in_ = 0;          // workers finished this generation; guarded by mu_
  EncodeStats job_stats_[6] = {};  // worker-local scratch merged here; guarded by mu_

  std::vector<std::thread> workers_;
};

}  // namespace slim

#endif  // SRC_CODEC_PARALLEL_H_
