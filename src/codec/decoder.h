// SLIM display command application ("decoding" on the console side).

#ifndef SRC_CODEC_DECODER_H_
#define SRC_CODEC_DECODER_H_

#include "src/fb/framebuffer.h"
#include "src/protocol/commands.h"

namespace slim {

// Applies one display command to a framebuffer. Returns false (leaving the framebuffer
// untouched) when the command is malformed: payload size does not match its rectangle, the
// rectangle is empty/negative, or a COPY's source rect reads outside the framebuffer.
// Valid commands whose destination partially exits the framebuffer are clipped, matching
// the hardware's behaviour.
[[nodiscard]] bool ApplyCommand(const DisplayCommand& cmd, Framebuffer* fb);

// Validation only (used by the transport layer before queueing work on the console).
[[nodiscard]] bool ValidateCommand(const DisplayCommand& cmd);

}  // namespace slim

#endif  // SRC_CODEC_DECODER_H_
