// The row hash shared by the damage tracker's shadow-frame diffing and the scroll
// detector's row index.
//
// A straight FNV-1a over a row is a serial multiply chain — ~5 cycles of latency per
// pixel, which dominates the whole damage pipeline once every flushed row gets hashed.
// Splitting the row across four independent FNV-1a lanes breaks the chain (the four
// multiplies retire in parallel) and folds the lanes at the end, roughly quadrupling
// throughput while keeping the mixing quality of the underlying FNV step.
//
// Every comparison in the pipeline is hash-to-hash with BOTH sides produced by this
// function (shadow row hashes vs current-frame row hashes, before vs after scroll rows),
// so the exact constants only need to mix well — but producers and consumers must agree
// on this one definition, which is why it lives in a shared header.

#ifndef SRC_CODEC_ROW_HASH_H_
#define SRC_CODEC_ROW_HASH_H_

#include <cstdint>
#include <span>

#include "src/fb/framebuffer.h"

namespace slim {

inline uint64_t RowHash64(std::span<const Pixel> row) {
  constexpr uint64_t kPrime = 0x100000001b3ull;
  uint64_t h0 = 0xcbf29ce484222325ull;
  uint64_t h1 = 0x9e3779b97f4a7c15ull;
  uint64_t h2 = 0xbf58476d1ce4e5b9ull;
  uint64_t h3 = 0x94d049bb133111ebull;
  const size_t n = row.size();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    h0 = (h0 ^ row[i]) * kPrime;
    h1 = (h1 ^ row[i + 1]) * kPrime;
    h2 = (h2 ^ row[i + 2]) * kPrime;
    h3 = (h3 ^ row[i + 3]) * kPrime;
  }
  for (; i < n; ++i) {
    h0 = (h0 ^ row[i]) * kPrime;
  }
  // Fold the lanes through the same FNV step so lane order matters, then finish with a
  // SplitMix64-style avalanche: FNV's last pixel only weakly affects the high bits, and
  // these hashes are compared raw (no downstream mixing).
  uint64_t h = (((h0 ^ h1) * kPrime ^ h2) * kPrime ^ h3) * kPrime;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace slim

#endif  // SRC_CODEC_ROW_HASH_H_
