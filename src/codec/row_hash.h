// The row hash shared by the damage tracker's shadow-frame diffing and the scroll
// detector's row index.
//
// A straight FNV-1a over a row is a serial multiply chain — ~5 cycles of latency per
// pixel, which dominates the whole damage pipeline once every flushed row gets hashed.
// Splitting the row across four independent FNV-1a lanes breaks the chain (the four
// multiplies retire in parallel) and folds the lanes at the end, roughly quadrupling
// throughput while keeping the mixing quality of the underlying FNV step.
//
// Every comparison in the pipeline is hash-to-hash with BOTH sides produced by this
// function (shadow row hashes vs current-frame row hashes, before vs after scroll rows),
// so the exact constants only need to mix well — but producers and consumers must agree
// on this one definition, which is why it lives in a shared header.
//
// The implementation lives in the SIMD kernel layer (src/codec/kernels/): this wrapper
// routes through the runtime-dispatched table, and every tier is bit-identical to the
// scalar reference (same lanes, same constants), so hashes computed under different
// SLIM_KERNELS settings — or stored before a dispatch change — still compare equal.

#ifndef SRC_CODEC_ROW_HASH_H_
#define SRC_CODEC_ROW_HASH_H_

#include <cstdint>
#include <span>

#include "src/codec/kernels/kernels.h"
#include "src/fb/framebuffer.h"

namespace slim {

inline uint64_t RowHash64(std::span<const Pixel> row) {
  return Kernels().row_hash(row.data(), row.size());
}

}  // namespace slim

#endif  // SRC_CODEC_ROW_HASH_H_
