// Console protocol-processing cost model (paper Table 5).
//
// The Sun Ray 1's observable performance limit is the sustained rate at which it decodes
// protocol commands, characterized by the paper as a constant startup cost per command plus
// an incremental cost per pixel. Our Console is a real decoder, so the pixels are exact;
// this model supplies the simulated time each command consumes, using the paper's measured
// constants, so that saturation and service-time experiments reproduce the Sun Ray regime.

#ifndef SRC_CONSOLE_COST_MODEL_H_
#define SRC_CONSOLE_COST_MODEL_H_

#include "src/protocol/commands.h"
#include "src/util/time.h"

namespace slim {

struct CommandCost {
  SimDuration startup = 0;      // ns per command
  double per_pixel_ns = 0.0;    // ns per destination pixel
};

struct ConsoleCostModel {
  CommandCost set{5000, 270.0};
  CommandCost bitmap{11080, 22.0};
  CommandCost fill{5000, 2.0};
  CommandCost copy{5000, 10.0};
  // CSCS startup is shared; the per-pixel cost depends on bit depth (Table 5 lists 205/193/
  // 178/150 ns for 16/12/8/5 bpp; 6 bpp, used by the MPEG player, is interpolated).
  SimDuration cscs_startup = 24000;
  double cscs_per_pixel_ns_16 = 205.0;
  double cscs_per_pixel_ns_12 = 193.0;
  double cscs_per_pixel_ns_8 = 178.0;
  double cscs_per_pixel_ns_6 = 161.0;
  double cscs_per_pixel_ns_5 = 150.0;

  // Sustained video streams repeatedly convert frames with identical geometry; the graphics
  // controller keeps its conversion/scaling state configured, so per-frame work shrinks to
  // this fraction of the cold Table 5 cost. Table 5's saturation microbenchmark measures the
  // cold path (commands with varying destinations); Section 7's achieved rates require the
  // warm path. See EXPERIMENTS.md for the reconciliation.
  double cscs_streaming_factor = 0.6;
  // Startup shrinks too: the controller is already configured.
  double cscs_streaming_startup_factor = 0.25;

  // Fixed cost of pulling a message off the network and dispatching it (not part of
  // Table 5's regression, folded into the startup numbers there; kept separate and small so
  // non-display messages also consume time).
  SimDuration dispatch_overhead = 1000;

  double CscsPerPixelNs(CscsDepth depth) const;

  // Simulated decode time for a display command (cold path).
  SimDuration CostOf(const DisplayCommand& cmd) const;

  // Decode time for a CSCS command whose geometry matches recently-processed stream state.
  SimDuration StreamingCscsCost(const CscsCommand& cmd) const;
};

}  // namespace slim

#endif  // SRC_CONSOLE_COST_MODEL_H_
