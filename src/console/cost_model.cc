#include "src/console/cost_model.h"

#include <cmath>

namespace slim {

double ConsoleCostModel::CscsPerPixelNs(CscsDepth depth) const {
  switch (depth) {
    case CscsDepth::k16:
      return cscs_per_pixel_ns_16;
    case CscsDepth::k12:
      return cscs_per_pixel_ns_12;
    case CscsDepth::k8:
      return cscs_per_pixel_ns_8;
    case CscsDepth::k6:
      return cscs_per_pixel_ns_6;
    case CscsDepth::k5:
      return cscs_per_pixel_ns_5;
  }
  return cscs_per_pixel_ns_16;
}

SimDuration ConsoleCostModel::CostOf(const DisplayCommand& cmd) const {
  const int64_t pixels = AffectedPixels(cmd);
  const CommandCost* cost = nullptr;
  double per_pixel = 0.0;
  SimDuration startup = 0;
  switch (TypeOf(cmd)) {
    case CommandType::kSet:
      cost = &set;
      break;
    case CommandType::kBitmap:
      cost = &bitmap;
      break;
    case CommandType::kFill:
      cost = &fill;
      break;
    case CommandType::kCopy:
      cost = &copy;
      break;
    case CommandType::kCscs: {
      const auto& cscs = std::get<CscsCommand>(cmd);
      startup = cscs_startup;
      // The per-pixel cost is paid on the source pixels converted; when the console also
      // upscales, the scaling writes are folded into the same constant (the paper's
      // measurements were taken through the same path).
      per_pixel = CscsPerPixelNs(cscs.depth);
      const int64_t src_pixels = static_cast<int64_t>(cscs.src_w) * cscs.src_h;
      return dispatch_overhead + startup +
             static_cast<SimDuration>(std::llround(per_pixel * static_cast<double>(src_pixels)));
    }
  }
  startup = cost->startup;
  per_pixel = cost->per_pixel_ns;
  return dispatch_overhead + startup +
         static_cast<SimDuration>(std::llround(per_pixel * static_cast<double>(pixels)));
}

SimDuration ConsoleCostModel::StreamingCscsCost(const CscsCommand& cmd) const {
  const int64_t src_pixels = static_cast<int64_t>(cmd.src_w) * cmd.src_h;
  const double per_pixel = CscsPerPixelNs(cmd.depth) * cscs_streaming_factor;
  const auto startup =
      static_cast<SimDuration>(static_cast<double>(cscs_startup) * cscs_streaming_startup_factor);
  return dispatch_overhead + startup +
         static_cast<SimDuration>(std::llround(per_pixel * static_cast<double>(src_pixels)));
}

}  // namespace slim
