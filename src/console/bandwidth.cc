#include "src/console/bandwidth.h"

#include <algorithm>

#include "src/util/check.h"

namespace slim {

std::vector<BandwidthGrant> AllocateBandwidth(std::vector<BandwidthRequest> requests,
                                              int64_t total_bps) {
  SLIM_CHECK(total_bps >= 0);
  std::vector<BandwidthGrant> grants;
  grants.reserve(requests.size());
  // Ascending by requested rate; flow id breaks ties deterministically.
  std::sort(requests.begin(), requests.end(), [](const auto& a, const auto& b) {
    if (a.bits_per_second != b.bits_per_second) {
      return a.bits_per_second < b.bits_per_second;
    }
    return a.flow_id < b.flow_id;
  });
  // Zero/negative requests sort first; reject them explicitly with a zero grant so they
  // neither consume bandwidth nor dilute the fair-share split below.
  size_t i = 0;
  for (; i < requests.size() && requests[i].bits_per_second <= 0; ++i) {
    grants.push_back({requests[i].flow_id, 0});
  }
  int64_t available = total_bps;
  for (; i < requests.size(); ++i) {
    const int64_t want = requests[i].bits_per_second;
    if (want > available) {
      break;  // This and all larger requests share the remainder fairly.
    }
    grants.push_back({requests[i].flow_id, want});
    available -= want;
  }
  const auto remaining = static_cast<int64_t>(requests.size() - i);
  if (remaining > 0) {
    const int64_t fair_share = available / remaining;
    // Integer division strands `available % remaining` bits/s; hand the residue out one
    // bit/s at a time in the same ascending order so the split stays deterministic and
    // the totals exact. No flow is over-granted: everyone here wanted more than
    // `available`, so want >= available + 1 >= fair_share + 1.
    int64_t residue = available % remaining;
    for (; i < requests.size(); ++i) {
      const int64_t extra = residue > 0 ? 1 : 0;
      residue -= extra;
      grants.push_back({requests[i].flow_id, fair_share + extra});
    }
  }
  return grants;
}

BandwidthAllocator::BandwidthAllocator(int64_t total_bps) : total_bps_(total_bps) {
  SLIM_CHECK(total_bps >= 0);
}

std::vector<BandwidthGrant> BandwidthAllocator::Request(uint64_t flow_id,
                                                        int64_t bits_per_second) {
  if (bits_per_second <= 0) {
    // Explicit withdrawal, not a zero-rate reservation: drop the flow entirely.
    return Remove(flow_id);
  }
  requests_[flow_id] = bits_per_second;
  Recompute();
  return GrantSnapshot();
}

std::vector<BandwidthGrant> BandwidthAllocator::Remove(uint64_t flow_id) {
  requests_.erase(flow_id);
  grants_.erase(flow_id);
  Recompute();
  return GrantSnapshot();
}

int64_t BandwidthAllocator::GrantFor(uint64_t flow_id) const {
  const auto it = grants_.find(flow_id);
  return it == grants_.end() ? 0 : it->second;
}

void BandwidthAllocator::Recompute() {
  std::vector<BandwidthRequest> requests;
  requests.reserve(requests_.size());
  for (const auto& [id, bps] : requests_) {
    requests.push_back({id, bps});
  }
  grants_.clear();
  for (const BandwidthGrant& grant : AllocateBandwidth(std::move(requests), total_bps_)) {
    grants_[grant.flow_id] = grant.bits_per_second;
  }
}

std::vector<BandwidthGrant> BandwidthAllocator::GrantSnapshot() const {
  std::vector<BandwidthGrant> out;
  out.reserve(grants_.size());
  for (const auto& [id, bps] : grants_) {
    out.push_back({id, bps});
  }
  return out;
}

}  // namespace slim
