// The SLIM console: a stateless desktop terminal.
//
// A Console owns a soft-state framebuffer and a transport endpoint. It decodes display
// commands for real (pixels are exact) while charging simulated time from the Table 5 cost
// model through a single busy-server decode pipeline; commands that arrive faster than the
// pipeline drains queue up to the device's memory limit and are then dropped, exactly the
// saturation behaviour the paper used to characterize the hardware. Input devices (keyboard,
// mouse, smart-card reader) inject upstream messages.

#ifndef SRC_CONSOLE_CONSOLE_H_
#define SRC_CONSOLE_CONSOLE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/console/bandwidth.h"
#include "src/console/cost_model.h"
#include "src/fb/framebuffer.h"
#include "src/net/fabric.h"
#include "src/net/transport.h"
#include "src/sim/simulator.h"

namespace slim {

class ExpHistogram;
class MetricRegistry;

struct ConsoleOptions {
  int32_t width = 1280;
  int32_t height = 1024;
  ConsoleCostModel cost_model;
  // Command memory: the Sun Ray 1 uses 2MB of its 8MB; queued protocol data beyond this is
  // dropped (and recovered by replay when the sender cares).
  int64_t queue_limit_bytes = 2 * 1024 * 1024;
  // Total downstream bandwidth the Section 7 allocator hands out.
  int64_t allocatable_bps = 100'000'000;
  // Record per-command service times (Figure 7 / Table 5 harnesses); costs memory.
  bool record_service_log = true;
};

// One decoded display command's timing, the unit of the paper's service-time analysis.
struct ServiceRecord {
  SimTime arrival = 0;     // message fully received at the console
  SimTime start = 0;       // decode began (arrival + queueing)
  SimTime completion = 0;  // pixels guaranteed on the display
  CommandType type = CommandType::kSet;
  int64_t pixels = 0;
  size_t wire_bytes = 0;
  uint64_t seq = 0;
};

class Console {
 public:
  Console(Simulator* sim, Fabric* fabric, ConsoleOptions options);

  NodeId node() const { return endpoint_->node(); }
  Framebuffer& framebuffer() { return fb_; }
  const Framebuffer& framebuffer() const { return fb_; }
  SlimEndpoint& endpoint() { return *endpoint_; }

  // --- Input devices ---
  void SendKey(NodeId server, uint32_t session, uint32_t keycode, bool pressed);
  void SendMouse(NodeId server, uint32_t session, int32_t x, int32_t y, uint8_t buttons,
                 bool is_motion);
  void InsertCard(NodeId server, uint64_t card_id);
  void RemoveCard(NodeId server, uint64_t card_id);

  // --- Observability ---
  const std::vector<ServiceRecord>& service_log() const { return service_log_; }
  void ClearServiceLog() { service_log_.clear(); }
  int64_t commands_applied() const { return commands_applied_; }
  int64_t commands_dropped() const { return commands_dropped_; }
  int64_t commands_rejected() const { return commands_rejected_; }
  int64_t cscs_stream_hits() const { return cscs_stream_hits_; }
  int64_t audio_bytes() const { return audio_bytes_; }
  // Session-lifecycle observability: release notices honoured (screen blanked), release
  // copies ignored as stale (a newer repaint had already been accepted), display commands
  // dropped because they predate an applied release, keepalive pings answered.
  int64_t releases_applied() const { return releases_applied_; }
  int64_t stale_releases_ignored() const { return stale_releases_ignored_; }
  int64_t post_release_drops() const { return post_release_drops_; }
  int64_t pings_answered() const { return pings_answered_; }
  // Section 7: BandwidthGrantMsg copies sent (answers plus revisions pushed to other flows
  // whose share moved when a request arrived or a flow died).
  int64_t grants_sent() const { return grants_sent_; }
  SimTime busy_until() const { return busy_until_; }
  // Time the decode pipeline has spent busy (for utilization accounting).
  SimDuration busy_time() const { return busy_time_; }

  const BandwidthAllocator& allocator() const { return allocator_; }

  // Registers the console's counters (`<prefix>.*`), decode latency/size histograms, and
  // its transport endpoint's counters (`<prefix>.transport.*`) with `registry`. Returns
  // false if any name was rejected (duplicate prefix).
  bool RegisterMetrics(MetricRegistry* registry, const std::string& prefix = "console");

  // Invoked after each command is applied (completion time semantics).
  using ApplyCallback = std::function<void(const ServiceRecord&)>;
  void set_apply_callback(ApplyCallback cb) { apply_callback_ = std::move(cb); }

 private:
  void OnMessage(const Message& msg, NodeId from);
  void ProcessDisplayCommand(const Message& msg, const DisplayCommand& cmd);
  void ProcessRelease(const Message& msg, NodeId from);
  void HandleBandwidthRequest(const Message& msg, NodeId from, const BandwidthRequestMsg& req);
  // Sends a grant to every flow in `grants` whose value differs from the last one sent to
  // it (the requester always hears back, changed or not — a request deserves an answer).
  void BroadcastGrants(const std::vector<BandwidthGrant>& grants, uint64_t requester_flow);

  Simulator* sim_;
  ConsoleOptions options_;
  Framebuffer fb_;
  std::unique_ptr<SlimEndpoint> endpoint_;
  BandwidthAllocator allocator_;

  SimTime busy_until_ = 0;
  SimDuration busy_time_ = 0;
  int64_t queued_bytes_ = 0;
  // Recently-seen CSCS stream geometries (src dims + destination); a hit means the graphics
  // controller state is already configured and the warm-path cost applies.
  struct StreamState {
    int32_t src_w;
    int32_t src_h;
    Rect dst;
    bool operator==(const StreamState&) const = default;
  };
  std::vector<StreamState> stream_cache_;  // small LRU, most recent at the back
  int64_t cscs_stream_hits_ = 0;
  int64_t commands_applied_ = 0;
  int64_t commands_dropped_ = 0;
  int64_t commands_rejected_ = 0;
  int64_t audio_bytes_ = 0;
  int64_t releases_applied_ = 0;
  int64_t stale_releases_ignored_ = 0;
  int64_t post_release_drops_ = 0;
  int64_t pings_answered_ = 0;
  // Per-sender sequence guards for session handoff. The console stays stateless in the
  // architectural sense — both are soft state that can be rebuilt by a repaint — but they
  // let it order a release notice against display traffic racing it through the fabric:
  // a release older than an accepted display command is stale (the session came back), and
  // a display command older than an applied release is dead traffic (NACK replay of the
  // released stream) that must not dirty a blanked screen.
  std::map<NodeId, uint64_t> last_display_seq_;
  std::map<NodeId, uint64_t> release_floor_;
  // Return address of each granted flow, so the allocator's revisions can travel back to
  // the server that asked. Like everything here it is soft state: a server whose flows
  // vanish (applied release) just re-requests on the next attach.
  struct FlowSource {
    NodeId node = kInvalidNode;
    uint32_t session = 0;
  };
  std::map<uint64_t, FlowSource> flow_sources_;
  std::map<uint64_t, int64_t> last_sent_grant_;
  int64_t grants_sent_ = 0;
  std::vector<ServiceRecord> service_log_;
  ApplyCallback apply_callback_;
  // Registry-owned histograms, non-null only after RegisterMetrics; bumping them is a
  // branch + O(1) when registered, nothing otherwise.
  ExpHistogram* decode_ns_hist_ = nullptr;
  ExpHistogram* queue_wait_ns_hist_ = nullptr;
  ExpHistogram* command_bytes_hist_ = nullptr;
};

}  // namespace slim

#endif  // SRC_CONSOLE_CONSOLE_H_
