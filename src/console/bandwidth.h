// Console network bandwidth allocation (paper Section 7).
//
// Applications (the display server on behalf of X clients, the video library on behalf of
// multimedia programs) request console bandwidth based on their past needs. The console
// sorts requests in ascending order and grants them one at a time until a request exceeds
// the available bandwidth, at which point all remaining requests receive a fair share of the
// unallocated remainder. This lets a Quake stream saturate its share while interactive
// windows keep getting service.

#ifndef SRC_CONSOLE_BANDWIDTH_H_
#define SRC_CONSOLE_BANDWIDTH_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace slim {

struct BandwidthRequest {
  uint64_t flow_id = 0;
  int64_t bits_per_second = 0;
};

struct BandwidthGrant {
  uint64_t flow_id = 0;
  int64_t bits_per_second = 0;
};

// Pure allocation function (unit-tested directly): ascending grant with fair-share
// remainder. Total granted never exceeds `total_bps`; requests are never over-granted.
// Zero/negative requests are rejected explicitly: they appear in the result with a zero
// grant and take no part in the fair-share split. When the link is contended the split is
// exact — the integer fair share would strand `available % remaining` bits/s, so the
// residue is handed out one bit/s at a time in the same deterministic ascending order
// (smallest request first, flow id breaking ties), making the totals bit-exact:
// sum(grants) == min(total_bps, sum(positive requests)).
std::vector<BandwidthGrant> AllocateBandwidth(std::vector<BandwidthRequest> requests,
                                              int64_t total_bps);

// Stateful tracker the console embeds: remembers the latest request per flow and
// recomputes grants whenever a request changes.
class BandwidthAllocator {
 public:
  explicit BandwidthAllocator(int64_t total_bps);

  // Updates (or registers) a flow's request and returns the fresh grant set. A
  // non-positive rate is an explicit withdrawal: the flow is dropped (as in Remove) and
  // the surviving flows' fresh grants are returned.
  std::vector<BandwidthGrant> Request(uint64_t flow_id, int64_t bits_per_second);
  // Drops a flow, recomputes immediately, and returns the surviving flows' fresh grants
  // so the caller can notify them — freed bandwidth is reabsorbed without a stale-grant
  // window.
  std::vector<BandwidthGrant> Remove(uint64_t flow_id);

  int64_t GrantFor(uint64_t flow_id) const;
  int64_t total_bps() const { return total_bps_; }
  size_t flow_count() const { return requests_.size(); }

 private:
  void Recompute();
  std::vector<BandwidthGrant> GrantSnapshot() const;

  int64_t total_bps_;
  std::map<uint64_t, int64_t> requests_;
  std::map<uint64_t, int64_t> grants_;
};

}  // namespace slim

#endif  // SRC_CONSOLE_BANDWIDTH_H_
