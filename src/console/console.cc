#include "src/console/console.h"

#include <algorithm>

#include "src/codec/decoder.h"
#include "src/obs/latency_audit.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace slim {

Console::Console(Simulator* sim, Fabric* fabric, ConsoleOptions options)
    : sim_(sim),
      options_(options),
      fb_(options.width, options.height),
      allocator_(options.allocatable_bps) {
  SLIM_CHECK(sim != nullptr && fabric != nullptr);
  endpoint_ = std::make_unique<SlimEndpoint>(fabric, fabric->AddNode());
  endpoint_->set_handler([this](const Message& msg, NodeId from) { OnMessage(msg, from); });
}

void Console::SendKey(NodeId server, uint32_t session, uint32_t keycode, bool pressed) {
  if (Tracer* tracer = Tracer::Global(); tracer != nullptr && pressed) {
    tracer->Instant(sim_->now(), "input.key", "input", kTraceTidInput,
                    {{"keycode", JsonValue(int64_t{keycode})}});
  }
  endpoint_->Send(server, session, KeyEventMsg{keycode, pressed});
}

void Console::SendMouse(NodeId server, uint32_t session, int32_t x, int32_t y, uint8_t buttons,
                        bool is_motion) {
  if (Tracer* tracer = Tracer::Global(); tracer != nullptr && !is_motion) {
    tracer->Instant(sim_->now(), "input.mouse", "input", kTraceTidInput,
                    {{"x", JsonValue(int64_t{x})}, {"y", JsonValue(int64_t{y})}});
  }
  endpoint_->Send(server, session, MouseEventMsg{x, y, buttons, is_motion});
}

bool Console::RegisterMetrics(MetricRegistry* registry, const std::string& prefix) {
  SLIM_CHECK(registry != nullptr);
  bool ok = true;
  ok = registry->BindCounter(prefix + ".commands_applied", &commands_applied_) && ok;
  ok = registry->BindCounter(prefix + ".commands_dropped", &commands_dropped_) && ok;
  ok = registry->BindCounter(prefix + ".commands_rejected", &commands_rejected_) && ok;
  ok = registry->BindCounter(prefix + ".cscs_stream_hits", &cscs_stream_hits_) && ok;
  ok = registry->BindCounter(prefix + ".audio_bytes", &audio_bytes_) && ok;
  ok = registry->BindCounter(prefix + ".releases_applied", &releases_applied_) && ok;
  ok = registry->BindCounter(prefix + ".stale_releases_ignored", &stale_releases_ignored_) &&
       ok;
  ok = registry->BindCounter(prefix + ".post_release_drops", &post_release_drops_) && ok;
  ok = registry->BindCounter(prefix + ".pings_answered", &pings_answered_) && ok;
  ok = registry->BindCounter(prefix + ".grants_sent", &grants_sent_) && ok;
  ok = registry->BindGauge(prefix + ".queued_bytes",
                           [this] { return static_cast<double>(queued_bytes_); }) &&
       ok;
  ok = registry->BindGauge(prefix + ".busy_ns",
                           [this] { return static_cast<double>(busy_time_); }) &&
       ok;
  decode_ns_hist_ = registry->Histogram(prefix + ".decode_ns");
  queue_wait_ns_hist_ = registry->Histogram(prefix + ".queue_wait_ns");
  command_bytes_hist_ = registry->Histogram(prefix + ".command_bytes");
  ok = ok && decode_ns_hist_ != nullptr && queue_wait_ns_hist_ != nullptr &&
       command_bytes_hist_ != nullptr;
  return endpoint_->RegisterMetrics(registry, prefix + ".transport") && ok;
}

void Console::InsertCard(NodeId server, uint64_t card_id) {
  endpoint_->Send(server, 0, SessionAttachMsg{card_id});
}

void Console::RemoveCard(NodeId server, uint64_t card_id) {
  endpoint_->Send(server, 0, SessionDetachMsg{card_id});
}

void Console::OnMessage(const Message& msg, NodeId from) {
  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, SetCommand> || std::is_same_v<T, BitmapCommand> ||
                      std::is_same_v<T, FillCommand> || std::is_same_v<T, CopyCommand> ||
                      std::is_same_v<T, CscsCommand>) {
          // A sequenced command older than an applied release belongs to the released
          // stream (a NACK replay that lost the race); it must not dirty the blank screen.
          if (const auto floor = release_floor_.find(from);
              floor != release_floor_.end() && msg.seq != 0 && msg.seq < floor->second) {
            ++post_release_drops_;
            if (LatencyAudit* audit = LatencyAudit::Global()) {
              audit->NoteConsoleDrop(endpoint_->node(), msg.seq);
            }
            return;
          }
          if (msg.seq != 0) {
            uint64_t& high = last_display_seq_[from];
            high = std::max(high, msg.seq);
          }
          ProcessDisplayCommand(msg, DisplayCommand(body));
        } else if constexpr (std::is_same_v<T, SessionReleaseMsg>) {
          ProcessRelease(msg, from);
        } else if constexpr (std::is_same_v<T, PingMsg>) {
          // Keepalive responder: the pong is what the server's liveness probe listens for.
          ++pings_answered_;
          endpoint_->Send(from, msg.session_id, PongMsg{body.payload});
        } else if constexpr (std::is_same_v<T, BandwidthRequestMsg>) {
          HandleBandwidthRequest(msg, from, body);
        } else if constexpr (std::is_same_v<T, AudioMsg>) {
          audio_bytes_ += static_cast<int64_t>(body.samples.size());
        } else {
          // Status, session and grant messages are server-side concerns; a console that
          // receives them ignores them (it is stateless and has nothing to update).
        }
      },
      msg.body);
}

void Console::HandleBandwidthRequest(const Message& msg, NodeId from,
                                     const BandwidthRequestMsg& req) {
  // Section 7 allocation: recompute, then push a grant to every flow whose share moved —
  // not just the requester. A non-positive rate withdraws the flow entirely.
  const std::vector<BandwidthGrant> grants =
      allocator_.Request(req.flow_id, req.bits_per_second);
  if (req.bits_per_second <= 0) {
    flow_sources_.erase(req.flow_id);
    last_sent_grant_.erase(req.flow_id);
  } else {
    flow_sources_[req.flow_id] = FlowSource{from, msg.session_id};
  }
  BroadcastGrants(grants, req.flow_id);
}

void Console::BroadcastGrants(const std::vector<BandwidthGrant>& grants,
                              uint64_t requester_flow) {
  for (const auto& g : grants) {
    const auto src = flow_sources_.find(g.flow_id);
    if (src == flow_sources_.end()) {
      continue;
    }
    const auto last = last_sent_grant_.find(g.flow_id);
    const bool changed =
        last == last_sent_grant_.end() || last->second != g.bits_per_second;
    if (!changed && g.flow_id != requester_flow) {
      continue;  // an unchanged share needs no revision message
    }
    last_sent_grant_[g.flow_id] = g.bits_per_second;
    ++grants_sent_;
    endpoint_->Send(src->second.node, src->second.session,
                    BandwidthGrantMsg{g.flow_id, g.bits_per_second, allocator_.total_bps()});
  }
}

void Console::ProcessRelease(const Message& msg, NodeId from) {
  // Stale copy: a display command newer than this release has already been accepted, so
  // the session that this notice releases has since come back to this console (fast
  // hotdesk round trip, or a delayed duplicate). Blanking now would wipe a live screen.
  if (const auto high = last_display_seq_.find(from);
      high != last_display_seq_.end() && msg.seq != 0 && msg.seq < high->second) {
    ++stale_releases_ignored_;
    return;
  }
  if (msg.seq != 0) {
    uint64_t& floor = release_floor_[from];
    floor = std::max(floor, msg.seq);
  }
  ++releases_applied_;
  // The released session's bandwidth dies with it: every flow this server had granted is
  // removed and the freed share is rebroadcast to the survivors immediately (no
  // stale-grant window — the whole point of Remove returning the fresh set).
  std::vector<uint64_t> dead;
  for (const auto& [flow, src] : flow_sources_) {
    if (src.node == from) {
      dead.push_back(flow);
    }
  }
  if (!dead.empty()) {
    std::vector<BandwidthGrant> grants;
    for (const uint64_t flow : dead) {
      grants = allocator_.Remove(flow);
      flow_sources_.erase(flow);
      last_sent_grant_.erase(flow);
    }
    BroadcastGrants(grants, /*requester_flow=*/0);
  }
  // The blank runs through the decode pipeline like any command: commands already queued
  // (all older than the release) finish first, then the screen goes dark. The stream cache
  // dies with the session — the next occupant's streams are not this one's.
  const SimTime at = std::max(sim_->now(), busy_until_);
  busy_until_ = at;
  sim_->ScheduleAt(at, [this] {
    fb_.Fill(fb_.bounds(), kBlack);
    stream_cache_.clear();
  });
}

void Console::ProcessDisplayCommand(const Message& msg, const DisplayCommand& cmd) {
  LatencyAudit* const audit = LatencyAudit::Global();
  if (!ValidateCommand(cmd)) {
    ++commands_rejected_;
    if (audit != nullptr) {
      audit->NoteConsoleDrop(endpoint_->node(), msg.seq);
    }
    return;
  }
  const size_t wire_bytes = WireSize(cmd);
  if (queued_bytes_ + static_cast<int64_t>(wire_bytes) > options_.queue_limit_bytes) {
    ++commands_dropped_;
    if (audit != nullptr) {
      audit->NoteConsoleDrop(endpoint_->node(), msg.seq);
    }
    return;
  }
  queued_bytes_ += static_cast<int64_t>(wire_bytes);

  SimDuration cost;
  if (const auto* cscs = std::get_if<CscsCommand>(&cmd)) {
    const StreamState state{cscs->src_w, cscs->src_h, cscs->dst};
    const auto it = std::find(stream_cache_.begin(), stream_cache_.end(), state);
    if (it != stream_cache_.end()) {
      ++cscs_stream_hits_;
      cost = options_.cost_model.StreamingCscsCost(*cscs);
      stream_cache_.erase(it);
    } else {
      cost = options_.cost_model.CostOf(cmd);
    }
    stream_cache_.push_back(state);
    if (stream_cache_.size() > 8) {
      stream_cache_.erase(stream_cache_.begin());
    }
  } else {
    cost = options_.cost_model.CostOf(cmd);
  }

  ServiceRecord record;
  record.arrival = sim_->now();
  record.start = std::max(sim_->now(), busy_until_);
  record.completion = record.start + cost;
  record.type = TypeOf(cmd);
  record.pixels = AffectedPixels(cmd);
  record.wire_bytes = wire_bytes;
  record.seq = msg.seq;
  busy_until_ = record.completion;
  busy_time_ += cost;
  if (audit != nullptr) {
    audit->NoteDecodeStart(endpoint_->node(), record.seq, record.arrival);
  }
  if (decode_ns_hist_ != nullptr) {
    decode_ns_hist_->Record(cost);
    queue_wait_ns_hist_->Record(record.start - record.arrival);
    command_bytes_hist_->Record(static_cast<int64_t>(wire_bytes));
  }
  if (Tracer* tracer = Tracer::Global()) {
    if (record.start > record.arrival) {
      tracer->Complete(record.arrival, record.start - record.arrival, "console.queue_wait",
                       "console", kTraceTidConsole,
                       {{"seq", JsonValue(static_cast<int64_t>(record.seq))}});
    }
    tracer->Complete(record.start, cost, "console.decode", "console", kTraceTidConsole,
                     {{"type", JsonValue(CommandTypeName(record.type))},
                      {"pixels", JsonValue(record.pixels)},
                      {"wire_bytes", JsonValue(static_cast<int64_t>(record.wire_bytes))},
                      {"seq", JsonValue(static_cast<int64_t>(record.seq))}});
  }

  sim_->ScheduleAt(record.completion, [this, cmd, record]() {
    queued_bytes_ -= static_cast<int64_t>(record.wire_bytes);
    if (!ApplyCommand(cmd, &fb_)) {
      // ValidateCommand is framebuffer-agnostic, so a COPY whose source rect exits the
      // framebuffer (corruption, malice) is only caught here; reject, don't apply.
      ++commands_rejected_;
      if (LatencyAudit* a = LatencyAudit::Global()) {
        a->NoteConsoleDrop(endpoint_->node(), record.seq);
      }
      return;
    }
    ++commands_applied_;
    if (Tracer* tracer = Tracer::Global()) {
      tracer->Instant(record.completion, "console.present", "console", kTraceTidConsole,
                      {{"seq", JsonValue(static_cast<int64_t>(record.seq))}});
    }
    if (LatencyAudit* a = LatencyAudit::Global()) {
      a->NotePresent(endpoint_->node(), record.seq, record.completion);
    }
    if (options_.record_service_log) {
      service_log_.push_back(record);
    }
    if (apply_callback_) {
      apply_callback_(record);
    }
  });
}

}  // namespace slim
