// Binary serialization of protocol logs.
//
// The paper's methodology logs everything once and answers later questions by
// post-processing (Section 3.1). TraceFile makes that workflow real: a study's logs can be
// written to disk and re-analyzed without re-running the simulation. The figure benches use
// this to cache the user study across processes (SLIM_TRACE_DIR).
//
// Format: 16-byte header (magic "SLIMTRC1", entry count), then fixed-size little-endian
// records. Forward-compatible via the version byte in the magic.

#ifndef SRC_TRACE_TRACE_FILE_H_
#define SRC_TRACE_TRACE_FILE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/console/console.h"
#include "src/trace/protocol_log.h"

namespace slim {

// Serializes a log to bytes / parses it back. Parsing returns nullopt on any corruption
// (bad magic, truncated records, invalid enum values).
std::vector<uint8_t> SerializeLog(const ProtocolLog& log);
std::optional<ProtocolLog> ParseLog(std::span<const uint8_t> data);

// Console service logs travel with the protocol log in study caches.
std::vector<uint8_t> SerializeServiceLog(const std::vector<ServiceRecord>& log);
std::optional<std::vector<ServiceRecord>> ParseServiceLog(std::span<const uint8_t> data);

// File helpers; return false / nullopt on I/O failure.
bool WriteFile(const std::string& path, std::span<const uint8_t> data);
std::optional<std::vector<uint8_t>> ReadFile(const std::string& path);

}  // namespace slim

#endif  // SRC_TRACE_TRACE_FILE_H_
