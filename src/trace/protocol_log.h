// Timestamped protocol logging and post-processing (paper Section 3.1).
//
// The paper's methodology is to log every X and SLIM protocol event during user trials and
// answer all later questions by post-processing, instead of re-running studies. ProtocolLog
// is that instrument: the display server records every input event, every SLIM command (with
// wire and uncompressed sizes) and the X-protocol cost of every drawing request, and the
// figure harnesses run the published analyses over the entries.

#ifndef SRC_TRACE_PROTOCOL_LOG_H_
#define SRC_TRACE_PROTOCOL_LOG_H_

#include <cstdint>
#include <vector>

#include "src/protocol/commands.h"
#include "src/util/time.h"

namespace slim {

enum class LogKind : uint8_t {
  kInput,    // keystroke or mouse click arriving at the server
  kDisplay,  // SLIM display command sent to the console
  kXRequest  // equivalent X11 request cost for the same drawing operation
};

struct LogEntry {
  SimTime time = 0;
  LogKind kind = LogKind::kInput;
  // kInput:
  bool is_key = false;
  // kDisplay:
  CommandType type = CommandType::kSet;
  int64_t pixels = 0;
  int64_t wire_bytes = 0;          // SLIM bytes incl. message header
  int64_t uncompressed_bytes = 0;  // 3 B per affected pixel
  // kXRequest:
  int64_t x_bytes = 0;
};

// The paper's heuristic attribution: all display activity between two input events is
// induced by the first event.
struct EventUpdate {
  SimTime event_time = 0;
  int64_t pixels = 0;
  int64_t slim_bytes = 0;
  int64_t uncompressed_bytes = 0;
  int64_t x_bytes = 0;
  int commands = 0;
};

class ProtocolLog {
 public:
  void RecordInput(SimTime t, bool is_key);
  void RecordCommand(SimTime t, const DisplayCommand& cmd);
  void RecordXRequest(SimTime t, int64_t bytes);
  // Appends a fully-populated entry (trace deserialization).
  void RecordEntry(const LogEntry& entry) { entries_.push_back(entry); }

  const std::vector<LogEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  int64_t input_events() const;
  SimDuration Span() const;  // first to last entry

  // Seconds between consecutive input events (Figure 2 feeds 1/interval into its CDF).
  std::vector<double> InputIntervalsSeconds() const;

  // Paper Section 5.2 heuristic: pixels (and bytes) between consecutive input events belong
  // to the first event. Activity before the first input event is dropped, matching the
  // paper's per-event accounting.
  std::vector<EventUpdate> AttributeToEvents() const;

  // Average protocol bandwidth over the log's span, in bits per second.
  double AverageSlimBps() const;
  double AverageXBps() const;
  double AverageRawBps() const;

  // Per-command-type totals for the Figure 4 compression analysis, indexed by CommandType.
  struct TypeTotals {
    int64_t commands = 0;
    int64_t wire_bytes = 0;
    int64_t uncompressed_bytes = 0;
  };
  void TotalsByType(TypeTotals out[6]) const;

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace slim

#endif  // SRC_TRACE_PROTOCOL_LOG_H_
