#include "src/trace/protocol_log.h"

#include <algorithm>

namespace slim {

void ProtocolLog::RecordInput(SimTime t, bool is_key) {
  LogEntry e;
  e.time = t;
  e.kind = LogKind::kInput;
  e.is_key = is_key;
  entries_.push_back(e);
}

void ProtocolLog::RecordCommand(SimTime t, const DisplayCommand& cmd) {
  LogEntry e;
  e.time = t;
  e.kind = LogKind::kDisplay;
  e.type = TypeOf(cmd);
  e.pixels = AffectedPixels(cmd);
  e.wire_bytes = static_cast<int64_t>(WireSize(cmd));
  e.uncompressed_bytes = UncompressedBytes(cmd);
  entries_.push_back(e);
}

void ProtocolLog::RecordXRequest(SimTime t, int64_t bytes) {
  LogEntry e;
  e.time = t;
  e.kind = LogKind::kXRequest;
  e.x_bytes = bytes;
  entries_.push_back(e);
}

int64_t ProtocolLog::input_events() const {
  return std::count_if(entries_.begin(), entries_.end(),
                       [](const LogEntry& e) { return e.kind == LogKind::kInput; });
}

SimDuration ProtocolLog::Span() const {
  if (entries_.size() < 2) {
    return 0;
  }
  return entries_.back().time - entries_.front().time;
}

std::vector<double> ProtocolLog::InputIntervalsSeconds() const {
  std::vector<double> intervals;
  SimTime last = -1;
  for (const LogEntry& e : entries_) {
    if (e.kind != LogKind::kInput) {
      continue;
    }
    if (last >= 0) {
      intervals.push_back(ToSeconds(e.time - last));
    }
    last = e.time;
  }
  return intervals;
}

std::vector<EventUpdate> ProtocolLog::AttributeToEvents() const {
  std::vector<EventUpdate> updates;
  bool open = false;
  EventUpdate current;
  for (const LogEntry& e : entries_) {
    switch (e.kind) {
      case LogKind::kInput:
        if (open) {
          updates.push_back(current);
        }
        current = EventUpdate{};
        current.event_time = e.time;
        open = true;
        break;
      case LogKind::kDisplay:
        if (open) {
          current.pixels += e.pixels;
          current.slim_bytes += e.wire_bytes;
          current.uncompressed_bytes += e.uncompressed_bytes;
          current.commands += 1;
        }
        break;
      case LogKind::kXRequest:
        if (open) {
          current.x_bytes += e.x_bytes;
        }
        break;
    }
  }
  if (open) {
    updates.push_back(current);
  }
  return updates;
}

namespace {

double AverageBps(const std::vector<LogEntry>& entries, SimDuration span,
                  int64_t (*extract)(const LogEntry&)) {
  if (span <= 0) {
    return 0.0;
  }
  int64_t total = 0;
  for (const LogEntry& e : entries) {
    total += extract(e);
  }
  return static_cast<double>(total) * 8.0 / ToSeconds(span);
}

}  // namespace

double ProtocolLog::AverageSlimBps() const {
  return AverageBps(entries_, Span(), [](const LogEntry& e) {
    return e.kind == LogKind::kDisplay ? e.wire_bytes : int64_t{0};
  });
}

double ProtocolLog::AverageXBps() const {
  return AverageBps(entries_, Span(), [](const LogEntry& e) {
    return e.kind == LogKind::kXRequest ? e.x_bytes : int64_t{0};
  });
}

double ProtocolLog::AverageRawBps() const {
  return AverageBps(entries_, Span(), [](const LogEntry& e) {
    return e.kind == LogKind::kDisplay ? e.uncompressed_bytes : int64_t{0};
  });
}

void ProtocolLog::TotalsByType(TypeTotals out[6]) const {
  for (int i = 0; i < 6; ++i) {
    out[i] = TypeTotals{};
  }
  for (const LogEntry& e : entries_) {
    if (e.kind != LogKind::kDisplay) {
      continue;
    }
    TypeTotals& slot = out[static_cast<size_t>(e.type)];
    slot.commands += 1;
    slot.wire_bytes += e.wire_bytes;
    slot.uncompressed_bytes += e.uncompressed_bytes;
  }
}

}  // namespace slim
