#include "src/trace/trace_file.h"

#include <cstdio>

#include "src/protocol/wire.h"

namespace slim {

namespace {

constexpr char kLogMagic[8] = {'S', 'L', 'I', 'M', 'T', 'R', 'C', '1'};
constexpr char kServiceMagic[8] = {'S', 'L', 'I', 'M', 'S', 'V', 'C', '1'};

void WriteMagic(ByteWriter& w, const char magic[8]) {
  for (int i = 0; i < 8; ++i) {
    w.U8(static_cast<uint8_t>(magic[i]));
  }
}

bool CheckMagic(ByteReader& r, const char magic[8]) {
  for (int i = 0; i < 8; ++i) {
    if (r.U8() != static_cast<uint8_t>(magic[i])) {
      return false;
    }
  }
  return r.ok();
}

}  // namespace

std::vector<uint8_t> SerializeLog(const ProtocolLog& log) {
  ByteWriter w;
  WriteMagic(w, kLogMagic);
  w.U64(log.entries().size());
  for (const LogEntry& e : log.entries()) {
    w.I64(e.time);
    w.U8(static_cast<uint8_t>(e.kind));
    w.U8(e.is_key ? 1 : 0);
    w.U8(static_cast<uint8_t>(e.type));
    w.U8(0);  // padding
    w.I64(e.pixels);
    w.I64(e.wire_bytes);
    w.I64(e.uncompressed_bytes);
    w.I64(e.x_bytes);
  }
  return w.Take();
}

std::optional<ProtocolLog> ParseLog(std::span<const uint8_t> data) {
  ByteReader r(data);
  if (!CheckMagic(r, kLogMagic)) {
    return std::nullopt;
  }
  const uint64_t count = r.U64();
  ProtocolLog log;
  for (uint64_t i = 0; i < count; ++i) {
    LogEntry e;
    e.time = r.I64();
    const uint8_t kind = r.U8();
    e.is_key = r.U8() != 0;
    const uint8_t type = r.U8();
    r.U8();  // padding
    e.pixels = r.I64();
    e.wire_bytes = r.I64();
    e.uncompressed_bytes = r.I64();
    e.x_bytes = r.I64();
    if (!r.ok() || kind > static_cast<uint8_t>(LogKind::kXRequest) || type < 1 || type > 5) {
      return std::nullopt;
    }
    e.kind = static_cast<LogKind>(kind);
    e.type = static_cast<CommandType>(type);
    switch (e.kind) {
      case LogKind::kInput:
        log.RecordInput(e.time, e.is_key);
        break;
      case LogKind::kXRequest:
        log.RecordXRequest(e.time, e.x_bytes);
        break;
      case LogKind::kDisplay:
        log.RecordEntry(e);
        break;
    }
  }
  if (r.remaining() != 0) {
    return std::nullopt;
  }
  return log;
}

std::vector<uint8_t> SerializeServiceLog(const std::vector<ServiceRecord>& log) {
  ByteWriter w;
  WriteMagic(w, kServiceMagic);
  w.U64(log.size());
  for (const ServiceRecord& rec : log) {
    w.I64(rec.arrival);
    w.I64(rec.start);
    w.I64(rec.completion);
    w.U8(static_cast<uint8_t>(rec.type));
    w.U8(0);
    w.U16(0);
    w.U32(0);  // padding to 8-byte alignment of the next field
    w.I64(rec.pixels);
    w.U64(rec.wire_bytes);
    w.U64(rec.seq);
  }
  return w.Take();
}

std::optional<std::vector<ServiceRecord>> ParseServiceLog(std::span<const uint8_t> data) {
  ByteReader r(data);
  if (!CheckMagic(r, kServiceMagic)) {
    return std::nullopt;
  }
  const uint64_t count = r.U64();
  std::vector<ServiceRecord> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ServiceRecord rec;
    rec.arrival = r.I64();
    rec.start = r.I64();
    rec.completion = r.I64();
    const uint8_t type = r.U8();
    r.U8();
    r.U16();
    r.U32();
    rec.pixels = r.I64();
    rec.wire_bytes = r.U64();
    rec.seq = r.U64();
    if (!r.ok() || type < 1 || type > 5) {
      return std::nullopt;
    }
    rec.type = static_cast<CommandType>(type);
    out.push_back(rec);
  }
  if (r.remaining() != 0) {
    return std::nullopt;
  }
  return out;
}

bool WriteFile(const std::string& path, std::span<const uint8_t> data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool ok = std::fclose(f) == 0 && written == data.size();
  return ok;
}

std::optional<std::vector<uint8_t>> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(size > 0 ? size : 0));
  const size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) {
    return std::nullopt;
  }
  return data;
}

}  // namespace slim
